//! Shared structure-of-arrays sample storage for the sampling estimators.
//!
//! Every sampling-family estimator (RSL, RSH, equi-depth, windowed, the
//! SPN training buffer) used to keep its own `Vec<GeoTextObject>` plus an
//! `oid → slot` `HashMap`, and answered `estimate` by scanning the whole
//! vector with [`RcDvq::matches`] — a pointer-chasing loop (one
//! `Arc<[KeywordId]>` deref per object) that dominates query latency at
//! paper-scale 100K-object reservoirs. [`SampleStore`] replaces that with
//! parallel arrays addressed by dense `u32` slots:
//!
//! * `xs` / `ys` — coordinate columns the spatial kernel streams through
//!   (64-slot chunks of branch-light compares the compiler can
//!   auto-vectorize). Coordinates stay `f64`: exhaustive samplers must
//!   reproduce *exact* match counts (`tests/proptest_invariants.rs` pins
//!   this), and narrowing to `f32` flips membership for points within one
//!   ulp of a query boundary.
//! * `oids` + `slot_of` — identity column and the reverse map for O(1)
//!   retraction of evicted objects.
//! * `kw_pool` + `kw_ranges` — one flat keyword-id pool with per-slot
//!   `(offset, len)` ranges; no per-object allocation, no `Arc` deref.
//! * an optional sample-local **inverted posting index**: per keyword a
//!   sorted list of packed `(slot << 32) | generation` entries with lazy
//!   tombstones, compacted once a quarter of a list is dead (the same
//!   recipe as `exactdb`'s postings). Pure-keyword counts become
//!   posting-length lookups; hybrid counts walk the posting union and test
//!   the rectangle per candidate.
//!
//! Slots are kept dense by swap-remove (mirroring the estimators' previous
//! slot arithmetic exactly, which algorithm-R replacement order depends
//! on). Because a swap-remove recycles slot ids, posting entries carry a
//! per-slot **generation**: any mutation of a physical slot bumps
//! `slot_gen[slot]`, so stale entries can never alias the slot's new
//! occupant. An entry is live iff `slot < len && slot_gen[slot] == gen`.
//!
//! [`SampleStore::count`] fuses the three kernels behind one dispatch:
//! spatial-only → chunked coordinate scan; keyword-only → posting
//! lengths / k-way union merge; hybrid → posting-first when the union mass
//! is below a quarter of the sample, full scan otherwise.

use geostream::{GeoTextObject, KeywordId, ObjectId, RcDvq, Rect};
use std::collections::HashMap;

/// Spatial-kernel chunk width (slots per inner loop).
const CHUNK: usize = 64;

/// Hybrid cost cutover: go posting-first when the union posting mass is
/// below `len / POSTING_CUTOVER_DIV`.
const POSTING_CUTOVER_DIV: usize = 4;

/// Keyword-pool compaction threshold: rebuild once more than half the pool
/// is garbage (and the pool is big enough to bother).
const POOL_MIN_COMPACT: usize = 64;

/// One keyword's posting list: packed `(slot << 32) | generation` entries,
/// sorted ascending (slot-major), with an exact count of dead entries.
#[derive(Debug, Default)]
struct PostingList {
    entries: Vec<u64>,
    dead: u32,
}

/// Sample-local inverted index over the store's keyword column.
#[derive(Debug, Default)]
struct PostingIndex {
    map: HashMap<KeywordId, PostingList>,
    /// Total entries across all lists (live + dead) — keeps
    /// [`SampleStore::memory_bytes`] O(1).
    total_entries: usize,
    compactions: u64,
}

#[inline]
fn pack(slot: u32, gen: u32) -> u64 {
    ((slot as u64) << 32) | gen as u64
}

#[inline]
fn entry_slot(e: u64) -> u32 {
    // LINT-ALLOW(as-truncation): the shift leaves exactly the upper 32 bits of the packed (slot, gen) pair
    (e >> 32) as u32
}

#[inline]
fn entry_gen(e: u64) -> u32 {
    // LINT-ALLOW(as-truncation): truncation extracts exactly the low 32 bits of the packed (slot, gen) pair
    e as u32
}

impl PostingIndex {
    fn post(&mut self, kw: KeywordId, slot: u32, gen: u32) {
        let e = pack(slot, gen);
        let list = self.map.entry(kw).or_default();
        if let Err(pos) = list.entries.binary_search(&e) {
            list.entries.insert(pos, e);
            self.total_entries += 1;
        }
    }

    /// Marks the entry `(slot, gen)` of `kw` dead; compacts the list at
    /// 25% garbage. The stale entry is located exactly (binary search on
    /// the packed key): a compaction triggered mid-operation may already
    /// have dropped it physically, and blindly bumping `dead` then would
    /// leave the counter permanently over live mass.
    fn tombstone(&mut self, kw: KeywordId, slot: u32, gen: u32, slot_gen: &[u32], live_len: usize) {
        let mut now_empty = false;
        if let Some(list) = self.map.get_mut(&kw) {
            if list.entries.binary_search(&pack(slot, gen)).is_err() {
                return; // already compacted away
            }
            list.dead += 1;
            if list.dead as usize * 4 >= list.entries.len() {
                let before = list.entries.len();
                list.entries.retain(|&e| {
                    let s = entry_slot(e) as usize;
                    s < live_len && slot_gen[s] == entry_gen(e)
                });
                self.total_entries -= before - list.entries.len();
                list.dead = 0;
                self.compactions += 1;
                now_empty = list.entries.is_empty();
            }
        }
        if now_empty {
            self.map.remove(&kw);
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.total_entries = 0;
    }
}

/// Structure-of-arrays storage for a dense, swap-removed object sample.
pub struct SampleStore {
    xs: Vec<f64>,
    ys: Vec<f64>,
    oids: Vec<ObjectId>,
    /// Per-slot `(offset, len)` into `kw_pool`.
    kw_ranges: Vec<(u32, u32)>,
    kw_pool: Vec<KeywordId>,
    /// Dead keyword ids still occupying `kw_pool`.
    kw_garbage: usize,
    slot_of: HashMap<ObjectId, u32>,
    /// High-water generation per physical slot; never decreases while the
    /// store holds data, so recycled slots cannot alias stale postings.
    slot_gen: Vec<u32>,
    postings: Option<PostingIndex>,
}

impl SampleStore {
    /// An empty store. `with_postings` enables the sample-local inverted
    /// index (estimators that never answer keyword predicates from the
    /// sample — e.g. the equi-depth grid — skip its upkeep cost).
    pub fn new(with_postings: bool) -> Self {
        SampleStore {
            xs: Vec::new(),
            ys: Vec::new(),
            oids: Vec::new(),
            kw_ranges: Vec::new(),
            kw_pool: Vec::new(),
            kw_garbage: 0,
            slot_of: HashMap::new(),
            slot_gen: Vec::new(),
            postings: with_postings.then(PostingIndex::default),
        }
    }

    /// Like [`SampleStore::new`] with pre-sized columns.
    pub fn with_capacity(cap: usize, with_postings: bool) -> Self {
        let mut s = Self::new(with_postings);
        s.xs.reserve(cap);
        s.ys.reserve(cap);
        s.oids.reserve(cap);
        s.kw_ranges.reserve(cap);
        s
    }

    /// Number of stored objects (dense: slots are `0..len`).
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The x-coordinate column.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y-coordinate column.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The object-id column.
    pub fn oids(&self) -> &[ObjectId] {
        &self.oids
    }

    /// The (sorted, deduped) keywords of `slot`.
    pub fn keywords(&self, slot: u32) -> &[KeywordId] {
        let (off, len) = self.kw_ranges[slot as usize];
        &self.kw_pool[off as usize..(off + len) as usize]
    }

    /// Slot of `oid`, if sampled.
    pub fn slot_of(&self, oid: ObjectId) -> Option<u32> {
        self.slot_of.get(&oid).copied()
    }

    /// Posting-list compactions performed so far (diagnostics).
    pub fn compactions(&self) -> u64 {
        self.postings.as_ref().map_or(0, |p| p.compactions)
    }

    /// Appends `obj` at slot `len`, returning its slot.
    pub fn push(&mut self, obj: &GeoTextObject) -> u32 {
        // LINT-ALLOW(as-truncation): slot count is bounded by the reservoir capacity, far below u32::MAX
        let slot = self.xs.len() as u32;
        self.xs.push(obj.loc.x);
        self.ys.push(obj.loc.y);
        self.oids.push(obj.oid);
        // LINT-ALLOW(as-truncation): pool length is bounded by capacity x keywords-per-object, well below u32::MAX
        let off = self.kw_pool.len() as u32;
        self.kw_pool.extend_from_slice(&obj.keywords);
        // LINT-ALLOW(as-truncation): per-object keyword counts are tiny (tens at most)
        self.kw_ranges.push((off, obj.keywords.len() as u32));
        if self.slot_gen.len() <= slot as usize {
            self.slot_gen.push(0);
        }
        self.slot_of.insert(obj.oid, slot);
        if let Some(p) = self.postings.as_mut() {
            let gen = self.slot_gen[slot as usize];
            for &kw in obj.keywords.iter() {
                p.post(kw, slot, gen);
            }
        }
        slot
    }

    /// Overwrites `slot` with `obj` (algorithm-R replacement).
    pub fn replace(&mut self, slot: u32, obj: &GeoTextObject) {
        let s = slot as usize;
        let (old_off, old_len) = self.kw_ranges[s];
        let old_gen = self.slot_gen[s];
        self.slot_of.remove(&self.oids[s]);
        self.slot_gen[s] = self.slot_gen[s].wrapping_add(1);
        self.xs[s] = obj.loc.x;
        self.ys[s] = obj.loc.y;
        self.oids[s] = obj.oid;
        // LINT-ALLOW(as-truncation): pool length is bounded by capacity x keywords-per-object, well below u32::MAX
        let off = self.kw_pool.len() as u32;
        self.kw_pool.extend_from_slice(&obj.keywords);
        // LINT-ALLOW(as-truncation): per-object keyword counts are tiny (tens at most)
        self.kw_ranges[s] = (off, obj.keywords.len() as u32);
        self.slot_of.insert(obj.oid, slot);
        if let Some(p) = self.postings.as_mut() {
            let gen = self.slot_gen[s];
            for &kw in obj.keywords.iter() {
                p.post(kw, slot, gen);
            }
            let live_len = self.xs.len();
            for i in old_off..old_off + old_len {
                p.tombstone(
                    self.kw_pool[i as usize],
                    slot,
                    old_gen,
                    &self.slot_gen,
                    live_len,
                );
            }
        }
        self.kw_garbage += old_len as usize;
        self.maybe_compact_pool();
    }

    /// Removes `oid` by swap-remove, returning its (former) slot. The
    /// object previously at the last slot, if any, moves into it — exactly
    /// the slot arithmetic the estimators' old `Vec` + `HashMap` pairs
    /// performed.
    pub fn remove(&mut self, oid: ObjectId) -> Option<u32> {
        let slot = self.slot_of.remove(&oid)? as usize;
        let (gone_off, gone_len) = self.kw_ranges[slot];
        let last = self.xs.len() - 1;
        if slot != last {
            let (moved_off, moved_len) = self.kw_ranges[last];
            let moved_oid = self.oids[last];
            let victim_gen = self.slot_gen[slot];
            let moved_old_gen = self.slot_gen[last];
            self.xs[slot] = self.xs[last];
            self.ys[slot] = self.ys[last];
            self.oids[slot] = moved_oid;
            self.kw_ranges[slot] = (moved_off, moved_len);
            // LINT-ALLOW(as-truncation): slot indices are bounded by the reservoir capacity, far below u32::MAX
            self.slot_of.insert(moved_oid, slot as u32);
            self.slot_gen[slot] = self.slot_gen[slot].wrapping_add(1);
            self.slot_gen[last] = self.slot_gen[last].wrapping_add(1);
            self.pop_columns();
            if let Some(p) = self.postings.as_mut() {
                let gen = self.slot_gen[slot];
                let live_len = self.xs.len();
                // Re-post the moved object at its new slot, then tombstone
                // both its stale entries (at `last`) and the victim's.
                for i in moved_off..moved_off + moved_len {
                    // LINT-ALLOW(as-truncation): slot indices are bounded by the reservoir capacity, far below u32::MAX
                    p.post(self.kw_pool[i as usize], slot as u32, gen);
                }
                for i in moved_off..moved_off + moved_len {
                    p.tombstone(
                        self.kw_pool[i as usize],
                        // LINT-ALLOW(as-truncation): `last` is a live slot index, bounded by the reservoir capacity
                        last as u32,
                        moved_old_gen,
                        &self.slot_gen,
                        live_len,
                    );
                }
                for i in gone_off..gone_off + gone_len {
                    p.tombstone(
                        self.kw_pool[i as usize],
                        // LINT-ALLOW(as-truncation): slot indices are bounded by the reservoir capacity, far below u32::MAX
                        slot as u32,
                        victim_gen,
                        &self.slot_gen,
                        live_len,
                    );
                }
            }
        } else {
            let victim_gen = self.slot_gen[slot];
            self.slot_gen[slot] = self.slot_gen[slot].wrapping_add(1);
            self.pop_columns();
            if let Some(p) = self.postings.as_mut() {
                let live_len = self.xs.len();
                for i in gone_off..gone_off + gone_len {
                    p.tombstone(
                        self.kw_pool[i as usize],
                        // LINT-ALLOW(as-truncation): slot indices are bounded by the reservoir capacity, far below u32::MAX
                        slot as u32,
                        victim_gen,
                        &self.slot_gen,
                        live_len,
                    );
                }
            }
        }
        self.kw_garbage += gone_len as usize;
        self.maybe_compact_pool();
        // LINT-ALLOW(as-truncation): `slot` round-trips a u32-sized slot index through usize
        Some(slot as u32)
    }

    fn pop_columns(&mut self) {
        self.xs.pop();
        self.ys.pop();
        self.oids.pop();
        self.kw_ranges.pop();
    }

    fn maybe_compact_pool(&mut self) {
        if self.kw_pool.len() < POOL_MIN_COMPACT || self.kw_garbage * 2 <= self.kw_pool.len() {
            return;
        }
        let mut pool = Vec::with_capacity(self.kw_pool.len() - self.kw_garbage);
        for r in self.kw_ranges.iter_mut() {
            let (off, len) = *r;
            // LINT-ALLOW(as-truncation): pool length is bounded by capacity x keywords-per-object, well below u32::MAX
            let start = pool.len() as u32;
            pool.extend_from_slice(&self.kw_pool[off as usize..(off + len) as usize]);
            *r = (start, len);
        }
        self.kw_pool = pool;
        self.kw_garbage = 0;
    }

    /// Drops all contents (capacities retained).
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.oids.clear();
        self.kw_ranges.clear();
        self.kw_pool.clear();
        self.kw_garbage = 0;
        self.slot_of.clear();
        // Safe to reset: the postings that generations guard are gone too.
        self.slot_gen.clear();
        if let Some(p) = self.postings.as_mut() {
            p.clear();
        }
    }

    // ---- match kernels ------------------------------------------------

    /// Whether `slot` falls inside `r`.
    #[inline]
    pub fn slot_in_rect(&self, slot: u32, r: &Rect) -> bool {
        let s = slot as usize;
        let (x, y) = (self.xs[s], self.ys[s]);
        x >= r.min_x && x <= r.max_x && y >= r.min_y && y <= r.max_y
    }

    /// Whether `slot` satisfies both of `query`'s predicates.
    pub fn slot_matches(&self, slot: u32, query: &RcDvq) -> bool {
        if let Some(r) = query.range() {
            if !self.slot_in_rect(slot, r) {
                return false;
            }
        }
        let kws = query.keywords();
        kws.is_empty() || intersects_sorted(self.keywords(slot), kws)
    }

    /// Chunked branch-light spatial kernel: counts slots inside `r` by
    /// streaming the coordinate columns in `CHUNK`-slot blocks of
    /// compare-and-accumulate — no branches, no `Arc` derefs, fully
    /// auto-vectorizable.
    pub fn count_in_rect(&self, r: &Rect) -> usize {
        let mut total = 0usize;
        for (cx, cy) in self.xs.chunks(CHUNK).zip(self.ys.chunks(CHUNK)) {
            let mut c = 0u32;
            for (&x, &y) in cx.iter().zip(cy.iter()) {
                c += u32::from(x >= r.min_x)
                    & u32::from(x <= r.max_x)
                    & u32::from(y >= r.min_y)
                    & u32::from(y <= r.max_y);
            }
            total += c as usize;
        }
        total
    }

    /// Multi-rectangle variant of [`SampleStore::count_in_rect`]: one
    /// streaming pass over the coordinate columns answers every
    /// rectangle. Each `CHUNK`-slot block is resident in cache while all
    /// rectangles test it, so the column traffic is paid once per batch
    /// instead of once per query. Counts are identical to calling
    /// `count_in_rect` per rectangle.
    pub fn count_in_rects(&self, rects: &[Rect]) -> Vec<usize> {
        let mut totals = vec![0usize; rects.len()];
        for (cx, cy) in self.xs.chunks(CHUNK).zip(self.ys.chunks(CHUNK)) {
            for (r, total) in rects.iter().zip(totals.iter_mut()) {
                let mut c = 0u32;
                for (&x, &y) in cx.iter().zip(cy.iter()) {
                    c += u32::from(x >= r.min_x)
                        & u32::from(x <= r.max_x)
                        & u32::from(y >= r.min_y)
                        & u32::from(y <= r.max_y);
                }
                *total += c as usize;
            }
        }
        totals
    }

    /// Multi-query variant of [`SampleStore::count`]: answers the whole
    /// batch with shared work — spatial-only queries ride one multi-rect
    /// column pass ([`SampleStore::count_in_rects`]), and queries with a
    /// common keyword set share a single posting-list union merge (each
    /// member only pays its rectangle test per visited slot). Counts are
    /// identical to calling `count` per query: every kernel is an exact
    /// match count, so routing differences cannot change a result.
    pub fn count_many(&self, queries: &[RcDvq]) -> Vec<usize> {
        let mut counts = vec![0usize; queries.len()];
        if self.is_empty() || queries.is_empty() {
            return counts;
        }
        let mut rect_queries: Vec<usize> = Vec::new();
        let mut rects: Vec<Rect> = Vec::new();
        let mut kw_groups: HashMap<&[KeywordId], Vec<usize>> = HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            match q.range() {
                Some(r) if q.keywords().is_empty() => {
                    rect_queries.push(i);
                    rects.push(*r);
                }
                _ => kw_groups.entry(q.keywords()).or_default().push(i),
            }
        }
        if !rects.is_empty() {
            for (&i, c) in rect_queries.iter().zip(self.count_in_rects(&rects)) {
                counts[i] = c;
            }
        }
        for (kws, members) in kw_groups {
            if self.postings.is_some() {
                // One union merge serves every query with this keyword
                // set; per visited slot each member only tests its rect.
                self.for_each_union_slot(kws, |s| {
                    for &i in &members {
                        match queries[i].range() {
                            Some(r) => counts[i] += self.slot_in_rect(s, r) as usize,
                            None => counts[i] += 1,
                        }
                    }
                });
            } else {
                for &i in &members {
                    counts[i] = self.count(&queries[i]);
                }
            }
        }
        counts
    }

    /// Gather variant of the spatial kernel for externally indexed slot
    /// lists (e.g. RSH's grid cells).
    pub fn count_slots_in_rect(&self, slots: &[u32], r: &Rect) -> usize {
        let mut c = 0usize;
        for &s in slots {
            c += self.slot_in_rect(s, r) as usize;
        }
        c
    }

    /// Live posting mass of the keyword union (`None` when postings are
    /// disabled) — the cost model input for the hybrid cutover.
    pub fn posting_mass(&self, kws: &[KeywordId]) -> Option<usize> {
        let p = self.postings.as_ref()?;
        Some(
            kws.iter()
                .filter_map(|k| p.map.get(k))
                .map(|l| l.entries.len() - l.dead as usize)
                .sum(),
        )
    }

    /// Visits each live slot whose object carries ≥1 of `kws`, exactly
    /// once, via a k-way merge over the sorted posting lists.
    fn for_each_union_slot(&self, kws: &[KeywordId], mut visit: impl FnMut(u32)) {
        let Some(p) = self.postings.as_ref() else {
            return;
        };
        let live_len = self.xs.len();
        let live = |e: u64| {
            let s = entry_slot(e) as usize;
            s < live_len && self.slot_gen[s] == entry_gen(e)
        };
        let lists: Vec<&[u64]> = kws
            .iter()
            .filter_map(|k| p.map.get(k))
            .map(|l| l.entries.as_slice())
            .collect();
        match lists.len() {
            0 => {}
            1 => {
                for &e in lists[0] {
                    if live(e) {
                        visit(entry_slot(e));
                    }
                }
            }
            _ => {
                let mut pos = vec![0usize; lists.len()];
                loop {
                    let mut min_slot = u32::MAX;
                    for (cursor, list) in pos.iter_mut().zip(&lists) {
                        while *cursor < list.len() {
                            let e = list[*cursor];
                            if live(e) {
                                min_slot = min_slot.min(entry_slot(e));
                                break;
                            }
                            *cursor += 1; // dead: skip permanently
                        }
                    }
                    if min_slot == u32::MAX {
                        break;
                    }
                    visit(min_slot);
                    for (cursor, list) in pos.iter_mut().zip(&lists) {
                        while *cursor < list.len() && entry_slot(list[*cursor]) <= min_slot {
                            *cursor += 1;
                        }
                    }
                }
            }
        }
    }

    /// Fused count of slots matching `query`, routed through the cheapest
    /// kernel: chunked scan (spatial-only), posting lengths / k-way union
    /// (keyword-only), or a posting-first vs scan-first hybrid chosen by
    /// the `mass < len/4` cutover.
    pub fn count(&self, query: &RcDvq) -> usize {
        let n = self.len();
        if n == 0 {
            return 0;
        }
        let kws = query.keywords();
        match query.range() {
            Some(r) if kws.is_empty() => self.count_in_rect(r),
            Some(r) => {
                if let Some(mass) = self.posting_mass(kws) {
                    if mass * POSTING_CUTOVER_DIV < n {
                        let mut c = 0usize;
                        self.for_each_union_slot(kws, |s| c += self.slot_in_rect(s, r) as usize);
                        return c;
                    }
                }
                let mut c = 0usize;
                // LINT-ALLOW(as-truncation): n is the live sample length, bounded by the reservoir capacity
                for s in 0..n as u32 {
                    if self.slot_in_rect(s, r) && intersects_sorted(self.keywords(s), kws) {
                        c += 1;
                    }
                }
                c
            }
            None => {
                if let Some(p) = self.postings.as_ref() {
                    if kws.len() == 1 {
                        return p
                            .map
                            .get(&kws[0])
                            .map_or(0, |l| l.entries.len() - l.dead as usize);
                    }
                    let mut c = 0usize;
                    self.for_each_union_slot(kws, |_| c += 1);
                    return c;
                }
                // LINT-ALLOW(as-truncation): n is the live sample length, bounded by the reservoir capacity
                (0..n as u32)
                    .filter(|&s| intersects_sorted(self.keywords(s), kws))
                    .count()
            }
        }
    }

    // ---- memory accounting --------------------------------------------

    /// Heap bytes, O(1): every term comes from a column length or a
    /// maintained counter.
    pub fn memory_bytes(&self) -> usize {
        self.bytes_with_posting_entries(self.postings.as_ref().map_or(0, |p| p.total_entries))
    }

    /// Heap bytes recomputed by walking every posting list — O(total
    /// entries); exists to verify the maintained counter in tests.
    pub fn recompute_memory_bytes(&self) -> usize {
        self.bytes_with_posting_entries(
            self.postings
                .as_ref()
                .map_or(0, |p| p.map.values().map(|l| l.entries.len()).sum()),
        )
    }

    fn bytes_with_posting_entries(&self, posting_entries: usize) -> usize {
        use std::mem::size_of;
        self.xs.len() * size_of::<f64>() * 2
            + self.oids.len() * size_of::<ObjectId>()
            + self.kw_ranges.len() * size_of::<(u32, u32)>()
            + self.kw_pool.len() * size_of::<KeywordId>()
            + self.slot_gen.len() * size_of::<u32>()
            + self.slot_of.len() * (size_of::<ObjectId>() + size_of::<u32>())
            + self.postings.as_ref().map_or(0, |p| {
                posting_entries * size_of::<u64>()
                    + p.map.len() * (size_of::<KeywordId>() + size_of::<PostingList>())
            })
    }
}

#[cfg(feature = "debug-invariants")]
impl SampleStore {
    /// Full O(n + postings) invariant walk (the `debug-invariants`
    /// auditor):
    ///
    /// * **columns** — all parallel arrays have the same length, and
    ///   `slot_gen` covers every slot.
    /// * **identity** — `slot_of` is the exact inverse of `oids` (which
    ///   also proves the ids are distinct).
    /// * **kw-ranges** — every per-slot range lies inside `kw_pool`.
    /// * **kw-garbage** — the garbage counter equals the pool bytes not
    ///   referenced by any live range.
    /// * **finite-coords** — every stored coordinate is finite (the match
    ///   kernels' comparisons assume it).
    /// * **posting-sorted** — every posting list is strictly ascending in
    ///   the packed `(slot, gen)` key (binary search depends on it).
    /// * **dead-counter** — each list's maintained `dead` count equals the
    ///   number of entries whose generation no longer matches.
    /// * **posting-coverage** — every live slot's keywords are posted
    ///   under the slot's current generation.
    /// * **total-entries** — the O(1) entry counter matches the lists.
    /// * **memory** — [`Self::memory_bytes`] agrees with the O(n)
    ///   recomputation.
    pub fn audit(&self) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        const S: &str = "SampleStore";
        let n = self.xs.len();
        ensure(
            self.ys.len() == n && self.oids.len() == n && self.kw_ranges.len() == n,
            S,
            "columns",
            || {
                format!(
                    "xs {} ys {} oids {} kw_ranges {}",
                    n,
                    self.ys.len(),
                    self.oids.len(),
                    self.kw_ranges.len()
                )
            },
        )?;
        ensure(self.slot_gen.len() >= n, S, "columns", || {
            format!("slot_gen {} < len {n}", self.slot_gen.len())
        })?;
        ensure(self.slot_of.len() == n, S, "identity", || {
            format!("slot_of holds {} ids for {n} slots", self.slot_of.len())
        })?;
        let mut ranged = 0usize;
        for s in 0..n {
            // LINT-ALLOW(as-truncation): slot indices fit u32 by construction (push caps the store)
            let slot = s as u32;
            ensure(
                self.slot_of.get(&self.oids[s]) == Some(&slot),
                S,
                "identity",
                || format!("slot {s} holds {:?} but slot_of disagrees", self.oids[s]),
            )?;
            let (off, len) = self.kw_ranges[s];
            ensure(
                (off as usize) + (len as usize) <= self.kw_pool.len(),
                S,
                "kw-ranges",
                || {
                    format!(
                        "slot {s} range ({off}, {len}) exceeds pool {}",
                        self.kw_pool.len()
                    )
                },
            )?;
            ranged += len as usize;
            ensure(
                self.xs[s].is_finite() && self.ys[s].is_finite(),
                S,
                "finite-coords",
                || format!("slot {s} at ({}, {})", self.xs[s], self.ys[s]),
            )?;
        }
        ensure(
            self.kw_pool.len() == ranged + self.kw_garbage,
            S,
            "kw-garbage",
            || {
                format!(
                    "pool {} != ranged {ranged} + garbage {}",
                    self.kw_pool.len(),
                    self.kw_garbage
                )
            },
        )?;
        if let Some(p) = self.postings.as_ref() {
            let mut entries_seen = 0usize;
            for (kw, list) in &p.map {
                entries_seen += list.entries.len();
                let mut actual_dead = 0u32;
                for (i, &e) in list.entries.iter().enumerate() {
                    if i > 0 {
                        ensure(list.entries[i - 1] < e, S, "posting-sorted", || {
                            format!("{kw:?} entries out of order at {i}")
                        })?;
                    }
                    let s = entry_slot(e) as usize;
                    if s >= n || self.slot_gen[s] != entry_gen(e) {
                        actual_dead += 1;
                    }
                }
                ensure(list.dead == actual_dead, S, "dead-counter", || {
                    format!(
                        "{kw:?} maintains dead {} but {actual_dead} entries are dead",
                        list.dead
                    )
                })?;
            }
            ensure(p.total_entries == entries_seen, S, "total-entries", || {
                format!("counter {} != walked {entries_seen}", p.total_entries)
            })?;
            for s in 0..n {
                let gen = self.slot_gen[s];
                // LINT-ALLOW(as-truncation): slot indices fit u32 by construction (push caps the store)
                let slot = s as u32;
                for &kw in self.keywords(slot) {
                    let posted = p
                        .map
                        .get(&kw)
                        .is_some_and(|l| l.entries.binary_search(&pack(slot, gen)).is_ok());
                    ensure(posted, S, "posting-coverage", || {
                        format!("slot {s} gen {gen} not posted under {kw:?}")
                    })?;
                }
            }
        }
        ensure(
            self.memory_bytes() == self.recompute_memory_bytes(),
            S,
            "memory",
            || {
                format!(
                    "maintained {} != recomputed {}",
                    self.memory_bytes(),
                    self.recompute_memory_bytes()
                )
            },
        )?;
        Ok(())
    }

    /// Test hook: desynchronizes the dead counter of one posting list (the
    /// seeded corruption the audit regression test plants), returning
    /// whether a non-empty list existed to corrupt.
    #[doc(hidden)]
    pub fn debug_desync_dead_counter(&mut self) -> bool {
        if let Some(p) = self.postings.as_mut() {
            if let Some(list) = p.map.values_mut().find(|l| !l.entries.is_empty()) {
                list.dead += 1;
                return true;
            }
        }
        false
    }
}

/// Merge intersection test over two sorted keyword slices (the RC-DVQ
/// `o.kw ∩ q.W ≠ ∅` predicate, identical to
/// `GeoTextObject::matches_any_keyword`).
#[inline]
pub fn intersects_sorted(obj_kws: &[KeywordId], query_kws: &[KeywordId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < obj_kws.len() && j < query_kws.len() {
        match obj_kws[i].cmp(&query_kws[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{Point, Timestamp};

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    /// Reference count: per-slot full match, no kernels.
    fn naive_count(s: &SampleStore, q: &RcDvq) -> usize {
        (0..s.len() as u32)
            .filter(|&i| s.slot_matches(i, q))
            .count()
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        *state >> 11
    }

    #[test]
    fn push_replace_remove_roundtrip() {
        let mut s = SampleStore::new(true);
        assert_eq!(s.push(&obj(1, 1.0, 2.0, &[5])), 0);
        assert_eq!(s.push(&obj(2, 3.0, 4.0, &[5, 7])), 1);
        assert_eq!(s.push(&obj(3, 5.0, 6.0, &[])), 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.slot_of(ObjectId(2)), Some(1));
        assert_eq!(s.keywords(1), &[KeywordId(5), KeywordId(7)]);

        s.replace(1, &obj(4, 7.0, 8.0, &[9]));
        assert_eq!(s.slot_of(ObjectId(2)), None);
        assert_eq!(s.slot_of(ObjectId(4)), Some(1));
        assert_eq!(s.keywords(1), &[KeywordId(9)]);

        // Swap-remove: slot 0 removed, former last (slot 2) moves into it.
        assert_eq!(s.remove(ObjectId(1)), Some(0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.slot_of(ObjectId(3)), Some(0));
        assert_eq!(s.oids()[0], ObjectId(3));
        assert_eq!(s.remove(ObjectId(99)), None);
    }

    #[test]
    fn kernels_agree_with_naive_matching_under_churn() {
        let mut s = SampleStore::new(true);
        let mut rng = 0xfeedu64;
        let mut live: Vec<GeoTextObject> = Vec::new();
        let queries = [
            RcDvq::spatial(Rect::new(10.0, 10.0, 60.0, 55.0)),
            RcDvq::keyword(vec![KeywordId(3)]),
            RcDvq::keyword(vec![KeywordId(1), KeywordId(4), KeywordId(6)]),
            RcDvq::hybrid(Rect::new(0.0, 0.0, 45.0, 90.0), vec![KeywordId(2)]),
            RcDvq::hybrid(
                Rect::new(20.0, 5.0, 80.0, 70.0),
                vec![KeywordId(0), KeywordId(5)],
            ),
        ];
        for i in 0..4_000u64 {
            let x = (lcg(&mut rng) % 1_000) as f64 / 10.0;
            let y = (lcg(&mut rng) % 1_000) as f64 / 10.0;
            let nk = (lcg(&mut rng) % 4) as usize;
            let kws: Vec<u32> = (0..nk).map(|_| (lcg(&mut rng) % 8) as u32).collect();
            let o = obj(i, x, y, &kws);
            // Mix of appends, replacements, and removals to recycle slots.
            match lcg(&mut rng) % 4 {
                0 if !live.is_empty() => {
                    let victim = live.swap_remove((lcg(&mut rng) as usize) % live.len());
                    assert!(s.remove(victim.oid).is_some());
                }
                1 if !live.is_empty() => {
                    let slot = (lcg(&mut rng) as usize % live.len()) as u32;
                    let old = s.oids()[slot as usize];
                    live.retain(|o| o.oid != old);
                    s.replace(slot, &o);
                    live.push(o);
                }
                _ => {
                    s.push(&o);
                    live.push(o);
                }
            }
            if i % 257 == 0 {
                for q in &queries {
                    assert_eq!(s.count(q), naive_count(&s, q), "kernel diverged at {i}");
                }
            }
        }
        assert_eq!(s.len(), live.len());
        for q in &queries {
            // Cross-check against brute force over the live set.
            let brute = live.iter().filter(|o| q.matches(o)).count();
            assert_eq!(s.count(q), brute);
        }
        assert!(s.compactions() > 0, "churn never compacted a posting list");
    }

    #[test]
    fn count_many_agrees_with_per_query_count() {
        for with_postings in [true, false] {
            let mut s = SampleStore::new(with_postings);
            let mut rng = 0x5eedu64;
            for i in 0..2_500u64 {
                let x = (lcg(&mut rng) % 1_000) as f64 / 10.0;
                let y = (lcg(&mut rng) % 1_000) as f64 / 10.0;
                let nk = (lcg(&mut rng) % 4) as usize;
                let kws: Vec<u32> = (0..nk).map(|_| (lcg(&mut rng) % 8) as u32).collect();
                s.push(&obj(i, x, y, &kws));
                if i % 3 == 0 && s.len() > 100 {
                    let victim = s.oids()[(lcg(&mut rng) as usize) % s.len()];
                    s.remove(victim);
                }
            }
            // A batch mixing all three types, duplicate signatures, and
            // shared keyword sets (the shared-merge path).
            let batch = vec![
                RcDvq::spatial(Rect::new(10.0, 10.0, 60.0, 55.0)),
                RcDvq::spatial(Rect::new(0.0, 0.0, 100.0, 100.0)),
                RcDvq::spatial(Rect::new(10.0, 10.0, 60.0, 55.0)),
                RcDvq::keyword(vec![KeywordId(3)]),
                RcDvq::keyword(vec![KeywordId(1), KeywordId(4)]),
                RcDvq::hybrid(
                    Rect::new(0.0, 0.0, 45.0, 90.0),
                    vec![KeywordId(1), KeywordId(4)],
                ),
                RcDvq::hybrid(
                    Rect::new(20.0, 5.0, 80.0, 70.0),
                    vec![KeywordId(1), KeywordId(4)],
                ),
                RcDvq::hybrid(Rect::new(20.0, 5.0, 80.0, 70.0), vec![KeywordId(6)]),
                RcDvq::keyword(vec![KeywordId(31)]), // absent keyword
            ];
            let many = s.count_many(&batch);
            let singles: Vec<usize> = batch.iter().map(|q| s.count(q)).collect();
            assert_eq!(
                many, singles,
                "count_many diverged (postings={with_postings})"
            );
        }
        // Empty store: all zeros.
        let s = SampleStore::new(true);
        assert_eq!(s.count_many(&[RcDvq::keyword(vec![KeywordId(0)])]), vec![0]);
    }

    #[test]
    fn memory_counter_matches_recompute_after_churn() {
        let mut s = SampleStore::new(true);
        let mut rng = 0xabcdu64;
        let mut ids: Vec<u64> = Vec::new();
        for i in 0..3_000u64 {
            let kws: Vec<u32> = (0..(lcg(&mut rng) % 5) as u32).collect();
            s.push(&obj(i, (i % 97) as f64, (i % 89) as f64, &kws));
            ids.push(i);
            if ids.len() > 500 {
                let victim = ids.remove(0);
                s.remove(ObjectId(victim));
            }
        }
        assert_eq!(s.memory_bytes(), s.recompute_memory_bytes());
        assert!(s.memory_bytes() > 0);
        s.clear();
        assert_eq!(s.memory_bytes(), s.recompute_memory_bytes());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn keyword_pool_compacts_under_replacement() {
        let mut s = SampleStore::new(false);
        for i in 0..8u64 {
            s.push(&obj(i, 0.0, 0.0, &[1, 2, 3, 4]));
        }
        // Replace slot 0 many times: garbage accrues, pool must not grow
        // without bound.
        for i in 100..400u64 {
            s.replace(0, &obj(i, 0.0, 0.0, &[5, 6, 7, 8]));
        }
        assert!(
            s.kw_pool.len() <= 8 * 4 * 4,
            "pool never compacted: {}",
            s.kw_pool.len()
        );
        assert_eq!(s.keywords(0).len(), 4);
    }

    #[test]
    fn recycled_slots_never_alias_postings() {
        let mut s = SampleStore::new(true);
        // Object with keyword 1 at slot 0, then swap-remove and refill the
        // slot with a keyword-2 object; the keyword-1 posting must be dead.
        s.push(&obj(1, 0.0, 0.0, &[1]));
        s.remove(ObjectId(1));
        s.push(&obj(2, 0.0, 0.0, &[2]));
        assert_eq!(s.count(&RcDvq::keyword(vec![KeywordId(1)])), 0);
        assert_eq!(s.count(&RcDvq::keyword(vec![KeywordId(2)])), 1);
        // Same through the union-merge path.
        assert_eq!(
            s.count(&RcDvq::keyword(vec![KeywordId(1), KeywordId(2)])),
            1
        );
    }

    #[test]
    fn hybrid_cutover_both_paths_agree() {
        let mut s = SampleStore::new(true);
        // Keyword 7 is rare (posting-first), keyword 0 is universal
        // (scan-first under the mass < len/4 cutover).
        for i in 0..1_000u64 {
            let kws: &[u32] = if i % 50 == 0 { &[0, 7] } else { &[0] };
            s.push(&obj(i, (i % 100) as f64, (i / 100) as f64, kws));
        }
        let rect = Rect::new(0.0, 0.0, 49.0, 9.0);
        for kws in [vec![KeywordId(7)], vec![KeywordId(0)]] {
            let q = RcDvq::hybrid(rect, kws);
            assert_eq!(s.count(&q), naive_count(&s, &q));
        }
    }

    /// The auditor passes on a heavily churned store and flags a seeded
    /// one-off corruption — a desynced posting dead counter, the exact
    /// drift the lazy-tombstone accounting could silently accumulate.
    #[cfg(feature = "debug-invariants")]
    #[test]
    fn audit_survives_churn_and_catches_seeded_corruption() {
        let mut s = SampleStore::new(true);
        let mut rng = 0xabcdu64;
        let mut live: Vec<ObjectId> = Vec::new();
        for i in 0..2_000u64 {
            let r = lcg(&mut rng);
            if live.len() > 64 && r % 3 == 0 {
                let victim = live.swap_remove((r % live.len() as u64) as usize);
                s.remove(victim);
            } else {
                let kws: Vec<u32> = (0..(r % 4)).map(|k| ((r >> 7) + k) as u32 % 16).collect();
                s.push(&obj(i, (r % 100) as f64, (r % 97) as f64, &kws));
                live.push(ObjectId(i));
            }
            if i % 250 == 0 {
                s.audit().unwrap_or_else(|e| panic!("churn step {i}: {e}"));
            }
        }
        s.audit().expect("post-churn audit");
        assert!(s.debug_desync_dead_counter(), "churn left no postings");
        let err = s.audit().expect_err("desynced counter must be caught");
        assert_eq!(err.structure, "SampleStore");
        assert_eq!(err.invariant, "dead-counter");
    }
}
