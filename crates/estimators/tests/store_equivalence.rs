//! Seed-equivalence property tests for the SoA [`SampleStore`] refactor.
//!
//! The pre-refactor ("seed") estimators kept per-estimator
//! `Vec<GeoTextObject>` samples plus a `HashMap<ObjectId, usize>` slot
//! index, replaced slots in place, and evicted via swap-remove. The SoA
//! store must be *observationally identical* under that contract: same
//! slot arithmetic, same RNG consumption order, therefore bit-equal
//! sample membership and estimates. These tests drive each refactored
//! estimator against a faithful reference implementation of the old
//! array-of-structs logic through churn sequences heavy enough to force
//! slot recycling, posting tombstone compaction, and keyword-pool
//! compaction, asserting estimates agree to 1e-9 across spatial,
//! keyword, and hybrid queries.

use estimators::equidepth::EquiDepthGrid;
use estimators::reservoir::ReservoirList;
use estimators::reservoir_hash::ReservoirHash;
use estimators::spn::SpnEstimator;
use estimators::windowed::WindowedSampler;
use estimators::{EstimatorConfig, SelectivityEstimator};
use geostream::{GeoTextObject, KeywordId, ObjectId, Point, RcDvq, Rect, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Reference array-of-structs algorithm-R reservoir, replicating the
/// seed estimators' storage semantics verbatim: in-place replacement,
/// swap-remove eviction, `HashMap` slot index, linear-scan estimation.
struct RefReservoir {
    capacity: usize,
    sample: Vec<GeoTextObject>,
    index: HashMap<ObjectId, usize>,
    seen: u64,
    population: u64,
    rng: StdRng,
}

impl RefReservoir {
    fn new(capacity: usize, seed: u64) -> Self {
        RefReservoir {
            capacity,
            sample: Vec::new(),
            index: HashMap::new(),
            seen: 0,
            population: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn place(&mut self, obj: &GeoTextObject, slot: usize) {
        if slot == self.sample.len() {
            self.index.insert(obj.oid, slot);
            self.sample.push(obj.clone());
        } else {
            self.index.remove(&self.sample[slot].oid);
            self.index.insert(obj.oid, slot);
            self.sample[slot] = obj.clone();
        }
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        self.population += 1;
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.place(obj, self.sample.len());
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.place(obj, j as usize);
            }
        }
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        self.population = self.population.saturating_sub(1);
        if let Some(slot) = self.index.remove(&obj.oid) {
            self.sample.swap_remove(slot);
            if slot < self.sample.len() {
                self.index.insert(self.sample[slot].oid, slot);
            }
        }
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        if self.sample.is_empty() {
            return 0.0;
        }
        let matches = self.sample.iter().filter(|o| query.matches(o)).count();
        matches as f64 / self.sample.len() as f64 * self.population as f64
    }
}

/// Reference A-ES recency-biased sampler mirroring `WindowedSampler`'s
/// seed semantics (identical key formula, identical `min_by` tie shape).
struct RefWindowed {
    capacity: usize,
    sample: Vec<GeoTextObject>,
    keys: Vec<f64>,
    index: HashMap<ObjectId, usize>,
    arrivals: u64,
    population: u64,
    rng: StdRng,
}

impl RefWindowed {
    const HALF_LIFE: f64 = 20_000.0;

    fn new(capacity: usize, seed: u64) -> Self {
        RefWindowed {
            capacity,
            sample: Vec::new(),
            keys: Vec::new(),
            index: HashMap::new(),
            arrivals: 0,
            population: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        self.population += 1;
        self.arrivals += 1;
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let w = (self.arrivals as f64 / Self::HALF_LIFE * std::f64::consts::LN_2).exp();
        let key = u.ln() / w;
        if self.sample.len() < self.capacity {
            self.index.insert(obj.oid, self.sample.len());
            self.sample.push(obj.clone());
            self.keys.push(key);
            return;
        }
        let (min_slot, &min_key) = self
            .keys
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite keys"))
            .expect("sample non-empty at capacity");
        if key > min_key {
            self.index.remove(&self.sample[min_slot].oid);
            self.index.insert(obj.oid, min_slot);
            self.sample[min_slot] = obj.clone();
            self.keys[min_slot] = key;
        }
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        self.population = self.population.saturating_sub(1);
        if let Some(slot) = self.index.remove(&obj.oid) {
            self.sample.swap_remove(slot);
            self.keys.swap_remove(slot);
            if slot < self.sample.len() {
                self.index.insert(self.sample[slot].oid, slot);
            }
        }
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        if self.sample.is_empty() {
            return 0.0;
        }
        let matches = self.sample.iter().filter(|o| query.matches(o)).count();
        matches as f64 / self.sample.len() as f64 * self.population as f64
    }
}

/// Deterministic churn stream: skewed keywords from a small vocabulary
/// (to exercise shared posting lists), clustered coordinates, and an
/// eviction regime aggressive enough to recycle most slots repeatedly.
struct Churn {
    state: u64,
    next_id: u64,
    live: Vec<GeoTextObject>,
}

impl Churn {
    fn new(seed: u64) -> Self {
        Churn {
            state: seed,
            next_id: 0,
            live: Vec::new(),
        }
    }

    fn rand(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state >> 11
    }

    fn unit(&mut self) -> f64 {
        self.rand() as f64 / (1u64 << 53) as f64
    }

    fn next_object(&mut self) -> GeoTextObject {
        let id = self.next_id;
        self.next_id += 1;
        let x = self.unit() * 100.0;
        let y = self.unit() * 100.0;
        let nk = (self.rand() % 5) as usize;
        let mut kws: Vec<KeywordId> = (0..nk)
            .map(|_| KeywordId((self.rand() % 32) as u32))
            .collect();
        kws.sort_unstable();
        kws.dedup();
        let obj = GeoTextObject::new(ObjectId(id), Point::new(x, y), kws, Timestamp(id));
        self.live.push(obj.clone());
        obj
    }

    /// Pops a pseudo-random live object for removal.
    fn victim(&mut self) -> Option<GeoTextObject> {
        if self.live.is_empty() {
            return None;
        }
        let idx = (self.rand() as usize) % self.live.len();
        Some(self.live.swap_remove(idx))
    }
}

fn probe_queries() -> Vec<RcDvq> {
    vec![
        RcDvq::spatial(Rect::new(10.0, 10.0, 60.0, 55.0)),
        RcDvq::spatial(Rect::new(70.0, 0.0, 100.0, 30.0)),
        RcDvq::keyword(vec![KeywordId(3)]),
        RcDvq::keyword(vec![KeywordId(1), KeywordId(7), KeywordId(20)]),
        RcDvq::hybrid(Rect::new(0.0, 0.0, 50.0, 100.0), vec![KeywordId(2)]),
        RcDvq::hybrid(
            Rect::new(25.0, 25.0, 90.0, 90.0),
            vec![KeywordId(5), KeywordId(11)],
        ),
    ]
}

fn config(cap: usize) -> EstimatorConfig {
    EstimatorConfig {
        domain: Rect::new(0.0, 0.0, 100.0, 100.0),
        reservoir_capacity: cap,
        ..EstimatorConfig::default()
    }
}

const DEFAULT_SEED: u64 = 0x001a_7e57;

/// Drives `steps` churn operations (2 inserts : 1 remove once warm) and
/// checks the probes at every checkpoint.
fn drive<E: SelectivityEstimator>(
    est: &mut E,
    est_len: impl Fn(&E) -> usize,
    reference: &mut RefReservoir,
    steps: usize,
) {
    let queries = probe_queries();
    let mut churn = Churn::new(0xdead_beef);
    for step in 0..steps {
        let obj = churn.next_object();
        est.insert(&obj);
        reference.insert(&obj);
        // Once the stream is past capacity, evict hard: two removals every
        // third step keeps the live set shrinking and recycling slots.
        if step % 3 == 2 && churn.live.len() > reference.capacity / 2 {
            for _ in 0..2 {
                if let Some(victim) = churn.victim() {
                    est.remove(&victim);
                    reference.remove(&victim);
                }
            }
        }
        if step % 97 == 0 || step + 1 == steps {
            assert_eq!(est_len(est), reference.sample.len(), "len @ step {step}");
            assert_eq!(est.population(), reference.population, "pop @ step {step}");
            for (qi, q) in queries.iter().enumerate() {
                let got = est.estimate(q);
                let want = reference.estimate(q);
                assert!(
                    (got - want).abs() < 1e-9,
                    "estimate diverged @ step {step}, query {qi}: {got} vs {want}"
                );
            }
        }
    }
}

#[test]
fn rsl_is_seed_equivalent_under_churn() {
    let cfg = config(128);
    let mut est = ReservoirList::new(&cfg);
    let mut reference = RefReservoir::new(est.capacity(), DEFAULT_SEED ^ 0x5151);
    drive(&mut est, |e| e.sample_len(), &mut reference, 4_000);
    // The churn above must have exercised posting compaction, otherwise
    // the tombstone path went untested.
    assert!(est.store().compactions() > 0, "no posting compaction hit");
}

#[test]
fn rsh_is_seed_equivalent_under_churn() {
    let cfg = config(128);
    let mut est = ReservoirHash::new(&cfg);
    let mut reference = RefReservoir::new(cfg.scaled_reservoir(), DEFAULT_SEED ^ 0x2525);
    drive(&mut est, |e| e.sample_len(), &mut reference, 4_000);
}

#[test]
fn spn_buffer_is_seed_equivalent_pre_model() {
    // SPN pre-model estimates scan the buffer; stay under `rebuild_every`
    // (1_024 at this capacity) so the mixture never builds.
    let cfg = config(256); // buffer capacity = 256/4 = 64
    let mut est = SpnEstimator::new(&cfg);
    let mut reference = RefReservoir::new(64, DEFAULT_SEED ^ 0x59a9);
    drive(&mut est, |e| e.store().len(), &mut reference, 600);
    assert!(!est.has_model(), "rebuild fired; test no longer pre-model");
}

#[test]
fn equidepth_sample_is_seed_equivalent_under_churn() {
    // The equi-depth grid estimates from quantile cells, not a sample
    // scan, so estimate equality vs a scanning reference is not defined.
    // What the refactor must preserve is the *boundary sample* itself:
    // same RNG stream, same slot arithmetic, hence identical sample
    // membership in identical slot order at every step.
    let cfg = config(2_048); // sample capacity = 2_048/8 = 256
    let mut est = EquiDepthGrid::new(&cfg);
    let mut reference = RefReservoir::new(256, DEFAULT_SEED ^ 0xe9d1);
    let mut churn = Churn::new(0xfeed_f00d);
    for step in 0..3_000usize {
        let obj = churn.next_object();
        est.insert(&obj);
        reference.insert(&obj);
        if step % 3 == 2 && churn.live.len() > 128 {
            for _ in 0..2 {
                if let Some(victim) = churn.victim() {
                    est.remove(&victim);
                    reference.remove(&victim);
                }
            }
        }
        if step % 211 == 0 || step + 1 == 3_000 {
            assert_eq!(est.store().len(), reference.sample.len(), "len @ {step}");
            assert_eq!(est.population(), reference.population, "pop @ {step}");
            for (slot, want) in reference.sample.iter().enumerate() {
                assert_eq!(est.store().oids()[slot], want.oid, "oid @ slot {slot}");
                assert_eq!(est.store().xs()[slot], want.loc.x, "x @ slot {slot}");
                assert_eq!(est.store().ys()[slot], want.loc.y, "y @ slot {slot}");
            }
        }
    }
}

#[test]
fn windowed_is_seed_equivalent_under_churn() {
    let cfg = config(128);
    let mut est = WindowedSampler::new(&cfg);
    let mut reference = RefWindowed::new(cfg.scaled_reservoir(), DEFAULT_SEED ^ 0x71de);
    let queries = probe_queries();
    let mut churn = Churn::new(0xabad_1dea);
    for step in 0..4_000usize {
        let obj = churn.next_object();
        est.insert(&obj);
        reference.insert(&obj);
        if step % 3 == 2 && churn.live.len() > 64 {
            for _ in 0..2 {
                if let Some(victim) = churn.victim() {
                    est.remove(&victim);
                    reference.remove(&victim);
                }
            }
        }
        if step % 97 == 0 || step + 1 == 4_000 {
            assert_eq!(est.sample_len(), reference.sample.len(), "len @ {step}");
            assert_eq!(est.population(), reference.population, "pop @ {step}");
            for (qi, q) in queries.iter().enumerate() {
                let got = est.estimate(q);
                let want = reference.estimate(q);
                assert!(
                    (got - want).abs() < 1e-9,
                    "windowed diverged @ {step}, query {qi}: {got} vs {want}"
                );
            }
        }
    }
}

#[test]
fn rsl_batch_ingestion_is_seed_equivalent() {
    // Batched ingestion must consume the RNG in the same order as
    // one-at-a-time seed insertion — estimates stay bit-equal.
    let cfg = config(128);
    let mut est = ReservoirList::new(&cfg);
    let mut reference = RefReservoir::new(est.capacity(), DEFAULT_SEED ^ 0x5151);
    let mut churn = Churn::new(0x0dd_ba11);
    let queries = probe_queries();
    for round in 0..40 {
        let batch: Vec<GeoTextObject> = (0..57).map(|_| churn.next_object()).collect();
        est.insert_batch(&batch);
        for obj in &batch {
            reference.insert(obj);
        }
        let victims: Vec<GeoTextObject> = (0..20).filter_map(|_| churn.victim()).collect();
        est.remove_batch(&victims);
        for v in &victims {
            reference.remove(v);
        }
        assert_eq!(est.sample_len(), reference.sample.len());
        assert_eq!(est.population(), reference.population);
        for q in &queries {
            let (got, want) = (est.estimate(q), reference.estimate(q));
            assert!(
                (got - want).abs() < 1e-9,
                "batch round {round}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn estimator_memory_counters_match_recompute_under_churn() {
    // O(1) accounting must agree with the O(n) walk at every checkpoint,
    // for every store-backed estimator, through recycling-heavy churn.
    let cfg = config(128);
    let mut rsl = ReservoirList::new(&cfg);
    let mut rsh = ReservoirHash::new(&cfg);
    let mut win = WindowedSampler::new(&cfg);
    let mut churn = Churn::new(0x5eed_5eed);
    for step in 0..2_000usize {
        let obj = churn.next_object();
        rsl.insert(&obj);
        rsh.insert(&obj);
        win.insert(&obj);
        if step % 3 == 2 && churn.live.len() > 64 {
            if let Some(victim) = churn.victim() {
                rsl.remove(&victim);
                rsh.remove(&victim);
                win.remove(&victim);
            }
        }
        if step % 251 == 0 || step + 1 == 2_000 {
            for (name, store) in [
                ("rsl", rsl.store()),
                ("rsh", rsh.store()),
                ("windowed", win.store()),
            ] {
                assert_eq!(
                    store.memory_bytes(),
                    store.recompute_memory_bytes(),
                    "{name} memory counter drifted @ step {step}"
                );
            }
        }
    }
}
