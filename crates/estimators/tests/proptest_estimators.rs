//! Estimator-specific property tests: structural invariants that must hold
//! for arbitrary object sets and queries.

use estimators::aasp::AaspTree;
use estimators::histogram2d::Histogram2D;
use estimators::kmv::KmvSynopsis;
use estimators::nn::Mlp;
use estimators::reservoir::ReservoirList;
use estimators::reservoir_hash::ReservoirHash;
use estimators::{EstimatorConfig, SelectivityEstimator};
use geostream::{GeoTextObject, KeywordId, ObjectId, Point, RcDvq, Rect, Timestamp};
use proptest::prelude::*;

const DOMAIN: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 64.0,
    max_y: 64.0,
};

fn config() -> EstimatorConfig {
    EstimatorConfig {
        domain: DOMAIN,
        reservoir_capacity: 512,
        ..EstimatorConfig::default()
    }
}

fn arb_objects(max: usize) -> impl Strategy<Value = Vec<GeoTextObject>> {
    proptest::collection::vec(
        (
            0.0..64.0f64,
            0.0..64.0f64,
            proptest::collection::vec(0u32..40, 0..3),
        ),
        1..max,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, kws))| {
                GeoTextObject::new(
                    ObjectId(i as u64),
                    Point::new(x, y),
                    kws.into_iter().map(KeywordId).collect(),
                    Timestamp(i as u64),
                )
            })
            .collect()
    })
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0..56.0f64, 0.0..56.0f64, 1.0..30.0f64, 1.0..30.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, (x + w).min(64.0), (y + h).min(64.0)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn histogram_total_mass_is_population(objects in arb_objects(200)) {
        let mut h = Histogram2D::new(&config());
        for o in &objects {
            h.insert(o);
        }
        let whole = RcDvq::spatial(DOMAIN);
        prop_assert!((h.estimate(&whole) - objects.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn histogram_is_monotone_in_range(objects in arb_objects(200), r in arb_rect()) {
        // A larger rectangle can never estimate fewer points.
        let mut h = Histogram2D::new(&config());
        for o in &objects {
            h.insert(o);
        }
        let grown = Rect::new(
            (r.min_x - 5.0).max(DOMAIN.min_x),
            (r.min_y - 5.0).max(DOMAIN.min_y),
            (r.max_x + 5.0).min(DOMAIN.max_x),
            (r.max_y + 5.0).min(DOMAIN.max_y),
        );
        let small = h.estimate(&RcDvq::spatial(r));
        let big = h.estimate(&RcDvq::spatial(grown));
        prop_assert!(big >= small - 1e-9, "shrunk: {} -> {}", small, big);
    }

    #[test]
    fn histogram_partition_is_additive(objects in arb_objects(200), split in 1.0..63.0f64) {
        // Splitting the domain into left/right halves must conserve mass.
        let mut h = Histogram2D::new(&config());
        for o in &objects {
            h.insert(o);
        }
        let left = h.estimate(&RcDvq::spatial(Rect::new(0.0, 0.0, split, 64.0)));
        let right = h.estimate(&RcDvq::spatial(Rect::new(split, 0.0, 64.0, 64.0)));
        prop_assert!(
            (left + right - objects.len() as f64).abs() < 1e-6,
            "mass not conserved: {} + {} != {}",
            left, right, objects.len()
        );
    }

    #[test]
    fn reservoir_never_exceeds_capacity(objects in arb_objects(900)) {
        let mut r = ReservoirList::new(&EstimatorConfig {
            reservoir_capacity: 64,
            ..config()
        });
        for o in &objects {
            r.insert(o);
        }
        prop_assert!(r.sample_len() <= 64);
        prop_assert_eq!(r.population(), objects.len() as u64);
    }

    #[test]
    fn rsh_and_rsl_agree_when_exhaustive(objects in arb_objects(150), r in arb_rect()) {
        // Same capacity, both exhaustive ⇒ identical estimates.
        let big = EstimatorConfig {
            reservoir_capacity: 4_096,
            ..config()
        };
        let mut rsl = ReservoirList::new(&big);
        let mut rsh = ReservoirHash::new(&big);
        for o in &objects {
            rsl.insert(o);
            rsh.insert(o);
        }
        for q in [
            RcDvq::spatial(r),
            RcDvq::keyword(vec![KeywordId(7)]),
            RcDvq::hybrid(r, vec![KeywordId(7)]),
        ] {
            prop_assert!((rsl.estimate(&q) - rsh.estimate(&q)).abs() < 1e-9);
        }
    }

    #[test]
    fn aasp_spatial_mass_is_conserved(objects in arb_objects(300)) {
        let mut a = AaspTree::new(&config());
        for o in &objects {
            a.insert(o);
        }
        let whole = a.estimate(&RcDvq::spatial(DOMAIN));
        prop_assert!(
            (whole - objects.len() as f64).abs() < 1e-6,
            "AASP mass drifted: {} vs {}",
            whole, objects.len()
        );
    }

    #[test]
    fn aasp_keyword_estimates_bounded_by_population(
        objects in arb_objects(300),
        kws in proptest::collection::vec(0u32..40, 1..4)
    ) {
        let mut a = AaspTree::new(&config());
        for o in &objects {
            a.insert(o);
        }
        let q = RcDvq::keyword(kws.into_iter().map(KeywordId).collect());
        let e = a.estimate(&q);
        prop_assert!(e >= -1e-9 && e <= objects.len() as f64 + 1e-6);
    }

    #[test]
    fn kmv_estimate_is_monotone_nondecreasing(ids in proptest::collection::vec(0u32..10_000, 1..500)) {
        let mut s = KmvSynopsis::new(32);
        let mut last = 0.0f64;
        for (i, id) in ids.iter().enumerate() {
            s.insert(KeywordId(*id));
            if i % 50 == 0 {
                let est = s.estimate_distinct();
                // Estimates can wobble once the synopsis saturates, but
                // while exact (below k) they never decrease.
                if s.len() < 32 {
                    prop_assert!(est >= last - 1e-9);
                    last = est;
                }
            }
        }
        prop_assert!(s.estimate_distinct() >= 1.0);
    }

    #[test]
    fn mlp_forward_is_deterministic_and_finite(
        inputs in proptest::collection::vec(-1.0..1.0f64, 4),
        seed in 0u64..1_000
    ) {
        let mlp = Mlp::new(&[4, 8, 2], 0.3, 0.2, seed);
        let a = mlp.infer(&inputs);
        let b = mlp.infer(&inputs);
        prop_assert_eq!(a.clone(), b);
        prop_assert!(a.iter().all(|v| v.is_finite()));
        prop_assert_eq!(a.len(), 2);
    }

    #[test]
    fn mlp_training_keeps_weights_finite(
        samples in proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64, 0.0..1.0f64), 1..100)
    ) {
        let mut mlp = Mlp::new(&[2, 6, 1], 0.3, 0.2, 9);
        for (a, b, t) in &samples {
            let loss = mlp.train(&[*a, *b], &[*t]);
            prop_assert!(loss.is_finite() && loss >= 0.0);
        }
        let out = mlp.infer(&[0.0, 0.0]);
        prop_assert!(out[0].is_finite());
    }
}
