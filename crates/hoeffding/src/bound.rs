//! The Hoeffding bound.

/// Computes the Hoeffding bound
/// `ε = sqrt(R² · ln(1/δ) / (2n))`
/// for a real-valued random variable with range `r`, confidence `1 − δ`,
/// and `n` independent observations.
///
/// After `n` observations, the true mean of the variable differs from the
/// observed mean by at most `ε` with probability `1 − δ`. VFDT uses this to
/// decide when the best split's information gain is reliably ahead of the
/// runner-up's: if `G(best) − G(second) > ε`, splitting on `best` is the
/// same decision a batch learner would make with probability `1 − δ`.
///
/// # Panics
/// Panics if `n == 0` or `delta` is outside `(0, 1)`.
pub fn hoeffding_bound(r: f64, delta: f64, n: u64) -> f64 {
    assert!(n > 0, "Hoeffding bound needs at least one observation");
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must be in (0, 1), got {delta}"
    );
    ((r * r * (1.0 / delta).ln()) / (2.0 * n as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_with_more_observations() {
        let e1 = hoeffding_bound(1.0, 1e-7, 100);
        let e2 = hoeffding_bound(1.0, 1e-7, 10_000);
        assert!(e2 < e1);
        // ε scales with 1/sqrt(n): 100x observations → 10x smaller bound.
        assert!((e1 / e2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn grows_with_range() {
        assert!(hoeffding_bound(2.0, 0.05, 50) > hoeffding_bound(1.0, 0.05, 50));
    }

    #[test]
    fn tighter_delta_means_larger_bound() {
        assert!(hoeffding_bound(1.0, 1e-9, 50) > hoeffding_bound(1.0, 0.1, 50));
    }

    #[test]
    fn known_value() {
        // R=1, delta=e^-2 ⇒ ln(1/δ)=2 ⇒ ε = sqrt(2/(2n)) = 1/sqrt(n).
        let e = hoeffding_bound(1.0, (-2.0f64).exp(), 25);
        assert!((e - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn zero_observations_panics() {
        let _ = hoeffding_bound(1.0, 0.05, 0);
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn bad_delta_panics() {
        let _ = hoeffding_bound(1.0, 1.5, 10);
    }
}
