//! The Hoeffding tree (VFDT) classifier.

use crate::attribute::{AttributeSpec, Instance, Schema, Value};
use crate::bound::hoeffding_bound;
use crate::stats::{partition_entropy, ClassCounts, GaussianEstimator};
use serde::{Deserialize, Serialize};

/// How a leaf turns its statistics into a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeafPrediction {
    /// Predict the most frequent class at the leaf (the paper's WEKA
    /// configuration).
    MajorityClass,
    /// Naive-Bayes prediction from the leaf's attribute observers; often
    /// more accurate with few observations per leaf.
    NaiveBayes,
    /// Per-leaf adaptive choice: each leaf prequentially scores both
    /// strategies on its own stream and predicts with whichever has been
    /// more accurate there (the classic VFDT-NBAdaptive variant).
    NBAdaptive,
}

/// Tuning knobs of the tree. The defaults mirror the classic VFDT / MOA
/// settings and the paper's WEKA defaults.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HoeffdingTreeConfig {
    /// Re-evaluate candidate splits at a leaf only every `grace_period`
    /// observations (split evaluation is the expensive step).
    pub grace_period: u64,
    /// `δ` of the Hoeffding bound: probability of choosing a wrong split.
    pub split_confidence: f64,
    /// If the bound `ε` drops below this value, the top two splits are
    /// considered tied and the best one is taken.
    pub tie_threshold: f64,
    /// Leaf prediction strategy.
    pub leaf_prediction: LeafPrediction,
    /// Candidate thresholds evaluated per numeric attribute.
    pub num_split_points: usize,
    /// Hard depth cap (safety valve; `usize::MAX` disables).
    pub max_depth: usize,
}

impl Default for HoeffdingTreeConfig {
    fn default() -> Self {
        HoeffdingTreeConfig {
            grace_period: 200,
            split_confidence: 1e-7,
            tie_threshold: 0.05,
            leaf_prediction: LeafPrediction::MajorityClass,
            num_split_points: 10,
            max_depth: usize::MAX,
        }
    }
}

/// Aggregate shape statistics of a tree, for monitoring and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeStats {
    pub nodes: usize,
    pub leaves: usize,
    pub splits: usize,
    pub depth: usize,
    pub instances_seen: u64,
}

type NodeId = usize;

/// Index of the largest weight, ties to the lowest index; `None` when all
/// weights are zero.
fn argmax(weights: &[f64]) -> Option<u32> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    weights
        .iter()
        .enumerate()
        // LINT-ALLOW(no-panic): information gains over finite counts are finite, so partial_cmp succeeds
        .max_by(|(ai, a), (bi, b)| a.partial_cmp(b).expect("finite").then(bi.cmp(ai)))
        .map(|(i, _)| i as u32)
}

/// Per-attribute sufficient statistics at a leaf.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Observer {
    /// `value → class counts` table.
    Categorical(Vec<ClassCounts>),
    /// One Gaussian per class.
    Numeric(Vec<GaussianEstimator>),
}

impl Observer {
    fn for_attr(spec: &AttributeSpec, num_classes: u32) -> Observer {
        match spec {
            AttributeSpec::Categorical { arity, .. } => {
                Observer::Categorical((0..*arity).map(|_| ClassCounts::new(num_classes)).collect())
            }
            AttributeSpec::Numeric { .. } => {
                Observer::Numeric((0..num_classes).map(|_| GaussianEstimator::new()).collect())
            }
        }
    }

    fn observe(&mut self, value: Value, class: u32, weight: f64) {
        match (self, value) {
            (Observer::Categorical(table), Value::Cat(v)) => {
                table[v as usize].add(class, weight);
            }
            (Observer::Numeric(gaussians), Value::Num(x)) => {
                gaussians[class as usize].add(x, weight);
            }
            _ => unreachable!("observer/value kind mismatch is caught by schema validation"),
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct LeafNode {
    counts: ClassCounts,
    observers: Vec<Observer>,
    weight_at_last_eval: f64,
    depth: usize,
    /// Prequential correct-prediction counts for the NBAdaptive strategy.
    mc_correct: f64,
    nb_correct: f64,
}

impl LeafNode {
    fn new(schema: &Schema, depth: usize, seed_counts: Option<ClassCounts>) -> Self {
        let counts = seed_counts.unwrap_or_else(|| ClassCounts::new(schema.num_classes()));
        LeafNode {
            weight_at_last_eval: counts.total(),
            counts,
            observers: schema
                .attributes()
                .iter()
                .map(|a| Observer::for_attr(a, schema.num_classes()))
                .collect(),
            depth,
            mc_correct: 0.0,
            nb_correct: 0.0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf(LeafNode),
    /// Multiway split on a categorical attribute: `children[v]` handles
    /// value `v`.
    CatSplit {
        attr: usize,
        children: Vec<NodeId>,
    },
    /// Binary split on a numeric attribute: left takes `value <= threshold`.
    NumSplit {
        attr: usize,
        threshold: f64,
        left: NodeId,
        right: NodeId,
    },
}

/// A candidate split found at evaluation time.
struct Candidate {
    gain: f64,
    attr: usize,
    /// `None` for categorical multiway, `Some(threshold)` for numeric.
    threshold: Option<f64>,
    /// Class-count seeds for the children, in child order.
    child_counts: Vec<ClassCounts>,
}

/// An incrementally trained Hoeffding tree classifier.
///
/// ```
/// use hoeffding::{AttributeSpec, HoeffdingTree, HoeffdingTreeConfig, Schema, Value};
///
/// let schema = Schema::new(
///     vec![AttributeSpec::categorical("type", 3), AttributeSpec::numeric("latency")],
///     2,
/// );
/// let mut tree = HoeffdingTree::new(schema, HoeffdingTreeConfig::default());
/// // class 1 whenever type == 2:
/// for i in 0..3_000u32 {
///     let ty = i % 3;
///     tree.train(&vec![Value::Cat(ty), Value::Num(f64::from(i % 7))], u32::from(ty == 2));
/// }
/// assert_eq!(tree.predict(&vec![Value::Cat(2), Value::Num(3.0)]), 1);
/// assert_eq!(tree.predict(&vec![Value::Cat(0), Value::Num(3.0)]), 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HoeffdingTree {
    schema: Schema,
    config: HoeffdingTreeConfig,
    nodes: Vec<Node>,
    root: NodeId,
    instances_seen: u64,
    splits_performed: usize,
}

impl HoeffdingTree {
    /// Creates an empty tree (a single leaf) over `schema`.
    pub fn new(schema: Schema, config: HoeffdingTreeConfig) -> Self {
        assert!(config.grace_period > 0, "grace period must be positive");
        assert!(
            config.num_split_points > 0,
            "need at least one numeric split point"
        );
        let root_leaf = LeafNode::new(&schema, 0, None);
        HoeffdingTree {
            schema,
            config,
            nodes: vec![Node::Leaf(root_leaf)],
            root: 0,
            instances_seen: 0,
            splits_performed: 0,
        }
    }

    /// The schema the tree was built over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Trains on one `(instance, class)` record. `O(depth)` plus an
    /// amortized split evaluation every `grace_period` records per leaf.
    ///
    /// # Panics
    /// Panics if the instance does not conform to the schema or `class` is
    /// out of range.
    pub fn train(&mut self, instance: &Instance, class: u32) {
        self.schema
            .validate(instance)
            // LINT-ALLOW(no-panic): an instance not matching the fixed schema is a programmer error; documented panic
            .unwrap_or_else(|e| panic!("invalid instance: {e}"));
        assert!(
            class < self.schema.num_classes(),
            "class {class} out of range 0..{}",
            self.schema.num_classes()
        );
        self.instances_seen += 1;
        let leaf_id = self.sort_to_leaf(instance);
        let grace = self.config.grace_period as f64;
        if self.config.leaf_prediction == LeafPrediction::NBAdaptive {
            // Prequential evaluation: score both strategies on this
            // instance *before* training on it.
            let (mc_hit, nb_hit) = {
                let Node::Leaf(leaf) = &self.nodes[leaf_id] else {
                    unreachable!("sorted to a leaf")
                };
                let mc = leaf.counts.majority();
                let nb_weights = self.naive_bayes_weights(leaf, instance);
                let nb = argmax(&nb_weights);
                (mc == Some(class), nb == Some(class))
            };
            let leaf = self.leaf_mut(leaf_id);
            if mc_hit {
                leaf.mc_correct += 1.0;
            }
            if nb_hit {
                leaf.nb_correct += 1.0;
            }
        }
        let (should_eval, depth) = {
            let leaf = self.leaf_mut(leaf_id);
            leaf.counts.add(class, 1.0);
            for (obs, &v) in leaf.observers.iter_mut().zip(instance.iter()) {
                obs.observe(v, class, 1.0);
            }
            let seen_since = leaf.counts.total() - leaf.weight_at_last_eval;
            (
                seen_since >= grace && leaf.counts.distinct() > 1,
                leaf.depth,
            )
        };
        if should_eval && depth < self.config.max_depth {
            self.try_split(leaf_id);
        }
    }

    /// Predicts the class of `instance`.
    pub fn predict(&self, instance: &Instance) -> u32 {
        self.predict_weights(instance)
            .into_iter()
            .enumerate()
            // LINT-ALLOW(no-panic): information gains over finite counts are finite, so partial_cmp succeeds
            .max_by(|(ai, a), (bi, b)| a.partial_cmp(b).expect("finite").then(bi.cmp(ai)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }

    /// Per-class scores for `instance` (not normalized). Majority-class
    /// leaves return raw class counts; naive-Bayes leaves return
    /// likelihood-weighted counts.
    pub fn predict_weights(&self, instance: &Instance) -> Vec<f64> {
        self.schema
            .validate(instance)
            // LINT-ALLOW(no-panic): an instance not matching the fixed schema is a programmer error; documented panic
            .unwrap_or_else(|e| panic!("invalid instance: {e}"));
        let leaf_id = self.sort_to_leaf_ref(instance);
        let Node::Leaf(leaf) = &self.nodes[leaf_id] else {
            unreachable!("sort_to_leaf_ref returns a leaf")
        };
        match self.config.leaf_prediction {
            LeafPrediction::MajorityClass => leaf.counts.iter().collect(),
            LeafPrediction::NaiveBayes => self.naive_bayes_weights(leaf, instance),
            LeafPrediction::NBAdaptive => {
                if leaf.nb_correct > leaf.mc_correct {
                    self.naive_bayes_weights(leaf, instance)
                } else {
                    leaf.counts.iter().collect()
                }
            }
        }
    }

    fn naive_bayes_weights(&self, leaf: &LeafNode, instance: &Instance) -> Vec<f64> {
        let total = leaf.counts.total();
        if total <= 0.0 {
            return leaf.counts.iter().collect();
        }
        (0..self.schema.num_classes())
            .map(|c| {
                let prior = (leaf.counts.get(c) + 1.0) / (total + self.schema.num_classes() as f64);
                let mut w = prior;
                for (obs, &v) in leaf.observers.iter().zip(instance.iter()) {
                    w *= match (obs, v) {
                        (Observer::Categorical(table), Value::Cat(val)) => {
                            let class_total: f64 = table.iter().map(|cc| cc.get(c)).sum();
                            (table[val as usize].get(c) + 1.0) / (class_total + table.len() as f64)
                        }
                        (Observer::Numeric(gs), Value::Num(x)) => {
                            let g = &gs[c as usize];
                            if g.weight() > 0.0 {
                                g.pdf(x).max(1e-12)
                            } else {
                                1e-12
                            }
                        }
                        _ => unreachable!("schema validated"),
                    };
                }
                w
            })
            .collect()
    }

    /// Shape statistics of the tree.
    pub fn stats(&self) -> TreeStats {
        let mut leaves = 0;
        let mut depth = 0;
        for node in &self.nodes {
            if let Node::Leaf(l) = node {
                leaves += 1;
                depth = depth.max(l.depth);
            }
        }
        TreeStats {
            nodes: self.nodes.len(),
            leaves,
            splits: self.splits_performed,
            depth,
            instances_seen: self.instances_seen,
        }
    }

    /// Discards all learned structure, keeping schema and configuration.
    /// LATEST uses this for the manual retraining trigger (§V-D).
    pub fn reset(&mut self) {
        let root_leaf = LeafNode::new(&self.schema, 0, None);
        self.nodes = vec![Node::Leaf(root_leaf)];
        self.root = 0;
        self.instances_seen = 0;
        self.splits_performed = 0;
    }

    /// Number of training records seen since construction or [`reset`].
    ///
    /// [`reset`]: HoeffdingTree::reset
    pub fn instances_seen(&self) -> u64 {
        self.instances_seen
    }

    /// Renders the tree as an indented, human-readable outline — split
    /// tests on internal nodes, class counts on leaves. Intended for
    /// debugging and operator dashboards, not for parsing.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        self.describe_node(self.root, 0, &mut out);
        out
    }

    fn describe_node(&self, id: NodeId, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match &self.nodes[id] {
            Node::Leaf(leaf) => {
                let counts: Vec<String> = leaf.counts.iter().map(|c| format!("{c:.0}")).collect();
                out.push_str(&format!(
                    "{pad}leaf depth={} majority={:?} counts=[{}]\n",
                    leaf.depth,
                    leaf.counts.majority(),
                    counts.join(", ")
                ));
            }
            Node::CatSplit { attr, children } => {
                let name = self.schema.attributes()[*attr].name();
                out.push_str(&format!("{pad}split on {name} (categorical)\n"));
                for (v, &child) in children.iter().enumerate() {
                    out.push_str(&format!("{pad}  = {v}:\n"));
                    self.describe_node(child, indent + 2, out);
                }
            }
            Node::NumSplit {
                attr,
                threshold,
                left,
                right,
            } => {
                let name = self.schema.attributes()[*attr].name();
                out.push_str(&format!("{pad}split on {name} <= {threshold:.4}\n"));
                self.describe_node(*left, indent + 1, out);
                out.push_str(&format!("{pad}else ({name} > {threshold:.4})\n"));
                self.describe_node(*right, indent + 1, out);
            }
        }
    }

    fn leaf_mut(&mut self, id: NodeId) -> &mut LeafNode {
        match &mut self.nodes[id] {
            Node::Leaf(l) => l,
            _ => unreachable!("expected leaf"),
        }
    }

    fn sort_to_leaf(&self, instance: &Instance) -> NodeId {
        self.sort_to_leaf_ref(instance)
    }

    fn sort_to_leaf_ref(&self, instance: &Instance) -> NodeId {
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                Node::Leaf(_) => return id,
                Node::CatSplit { attr, children } => {
                    let v = instance[*attr].as_cat() as usize;
                    id = children[v];
                }
                Node::NumSplit {
                    attr,
                    threshold,
                    left,
                    right,
                } => {
                    id = if instance[*attr].as_num() <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Evaluates candidate splits at `leaf_id` and splits if the Hoeffding
    /// bound allows.
    fn try_split(&mut self, leaf_id: NodeId) {
        let (pre_entropy, total, depth, candidates) = {
            let Node::Leaf(leaf) = &self.nodes[leaf_id] else {
                unreachable!()
            };
            let mut cands: Vec<Candidate> = Vec::with_capacity(self.schema.num_attributes());
            let pre = leaf.counts.entropy();
            for (attr, obs) in leaf.observers.iter().enumerate() {
                if let Some(c) = self.best_split_for(attr, obs, pre) {
                    cands.push(c);
                }
            }
            (pre, leaf.counts.total(), leaf.depth, cands)
        };
        // Mark evaluation time regardless of outcome so we wait another
        // grace period before re-evaluating.
        self.leaf_mut(leaf_id).weight_at_last_eval = total;

        if candidates.is_empty() || total <= 0.0 {
            return;
        }
        let mut sorted = candidates;
        // LINT-ALLOW(no-panic): gains are computed from finite counts, so partial_cmp succeeds
        sorted.sort_by(|a, b| b.gain.partial_cmp(&a.gain).expect("gains are finite"));
        let best_gain = sorted[0].gain;
        let second_gain = if sorted.len() > 1 {
            sorted[1].gain
        } else {
            0.0
        };
        // Range of information gain is log2(num_classes).
        let range = f64::from(self.schema.num_classes()).log2();
        let eps = hoeffding_bound(range, self.config.split_confidence, total as u64);
        let decided = best_gain - second_gain > eps || eps < self.config.tie_threshold;
        // A split must beat the no-split option (gain 0) by the same margin.
        if !decided || best_gain <= eps.min(pre_entropy) || best_gain <= 0.0 {
            return;
        }
        let winner = sorted.remove(0);
        self.apply_split(leaf_id, winner, depth);
    }

    fn best_split_for(&self, attr: usize, obs: &Observer, pre_entropy: f64) -> Option<Candidate> {
        match obs {
            Observer::Categorical(table) => {
                let gain = pre_entropy - partition_entropy(table);
                if !gain.is_finite() {
                    return None;
                }
                Some(Candidate {
                    gain,
                    attr,
                    threshold: None,
                    child_counts: table.clone(),
                })
            }
            Observer::Numeric(gaussians) => {
                let lo = gaussians
                    .iter()
                    .filter_map(GaussianEstimator::min)
                    .fold(f64::INFINITY, f64::min);
                let hi = gaussians
                    .iter()
                    .filter_map(GaussianEstimator::max)
                    .fold(f64::NEG_INFINITY, f64::max);
                if !lo.is_finite() || !hi.is_finite() || hi <= lo {
                    return None;
                }
                let k = self.config.num_split_points;
                let mut best: Option<Candidate> = None;
                for i in 1..=k {
                    let t = lo + (hi - lo) * i as f64 / (k + 1) as f64;
                    let mut left = ClassCounts::new(self.schema.num_classes());
                    let mut right = ClassCounts::new(self.schema.num_classes());
                    for (class, g) in gaussians.iter().enumerate() {
                        let below = g.weight_below(t);
                        left.add(class as u32, below);
                        right.add(class as u32, (g.weight() - below).max(0.0));
                    }
                    if left.total() <= 0.0 || right.total() <= 0.0 {
                        continue;
                    }
                    let gain = pre_entropy - partition_entropy(&[left.clone(), right.clone()]);
                    if gain.is_finite() && best.as_ref().is_none_or(|b| gain > b.gain) {
                        best = Some(Candidate {
                            gain,
                            attr,
                            threshold: Some(t),
                            child_counts: vec![left, right],
                        });
                    }
                }
                best
            }
        }
    }

    fn apply_split(&mut self, leaf_id: NodeId, cand: Candidate, depth: usize) {
        let children: Vec<NodeId> = cand
            .child_counts
            .into_iter()
            .map(|seed| {
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf(LeafNode::new(
                    &self.schema,
                    depth + 1,
                    Some(seed),
                )));
                id
            })
            .collect();
        self.nodes[leaf_id] = match cand.threshold {
            None => Node::CatSplit {
                attr: cand.attr,
                children,
            },
            Some(t) => Node::NumSplit {
                attr: cand.attr,
                threshold: t,
                left: children[0],
                right: children[1],
            },
        };
        self.splits_performed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat_schema() -> Schema {
        Schema::new(
            vec![
                AttributeSpec::categorical("a", 4),
                AttributeSpec::categorical("noise", 3),
            ],
            2,
        )
    }

    #[test]
    fn empty_tree_predicts_class_zero() {
        let tree = HoeffdingTree::new(cat_schema(), HoeffdingTreeConfig::default());
        assert_eq!(tree.predict(&vec![Value::Cat(0), Value::Cat(0)]), 0);
        assert_eq!(tree.stats().leaves, 1);
        assert_eq!(tree.stats().splits, 0);
    }

    #[test]
    fn learns_categorical_concept() {
        // class = (a == 1), noise attribute irrelevant.
        let mut tree = HoeffdingTree::new(cat_schema(), HoeffdingTreeConfig::default());
        let mut x = 0u32;
        for _ in 0..5_000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let a = (x >> 8) % 4;
            let noise = (x >> 16) % 3;
            tree.train(&vec![Value::Cat(a), Value::Cat(noise)], u32::from(a == 1));
        }
        assert!(tree.stats().splits >= 1, "tree never split");
        for a in 0..4 {
            for noise in 0..3 {
                let p = tree.predict(&vec![Value::Cat(a), Value::Cat(noise)]);
                assert_eq!(p, u32::from(a == 1), "a={a} noise={noise}");
            }
        }
    }

    #[test]
    fn learns_numeric_threshold() {
        let schema = Schema::new(vec![AttributeSpec::numeric("x")], 2);
        let mut tree = HoeffdingTree::new(schema, HoeffdingTreeConfig::default());
        let mut x = 1u32;
        for _ in 0..8_000 {
            x = x.wrapping_mul(22_695_477).wrapping_add(1);
            let v = f64::from(x >> 16) / f64::from(u16::MAX); // [0,1]
            tree.train(&vec![Value::Num(v)], u32::from(v > 0.5));
        }
        assert!(tree.stats().splits >= 1);
        assert_eq!(tree.predict(&vec![Value::Num(0.1)]), 0);
        assert_eq!(tree.predict(&vec![Value::Num(0.9)]), 1);
    }

    #[test]
    fn learns_conjunction_with_depth() {
        // class = (a == 0 AND x > 0.5): needs a two-level tree.
        let schema = Schema::new(
            vec![
                AttributeSpec::categorical("a", 2),
                AttributeSpec::numeric("x"),
            ],
            2,
        );
        let mut tree = HoeffdingTree::new(schema, HoeffdingTreeConfig::default());
        let mut s = 7u32;
        for _ in 0..30_000 {
            s = s.wrapping_mul(134_775_813).wrapping_add(1);
            let a = (s >> 7) % 2;
            let x = f64::from(s >> 16) / f64::from(u16::MAX);
            let label = u32::from(a == 0 && x > 0.5);
            tree.train(&vec![Value::Cat(a), Value::Num(x)], label);
        }
        let acc = {
            let mut correct = 0;
            let mut total = 0;
            for a in 0..2 {
                for xi in 0..20 {
                    let x = (xi as f64 + 0.5) / 20.0;
                    let want = u32::from(a == 0 && x > 0.5);
                    if tree.predict(&vec![Value::Cat(a), Value::Num(x)]) == want {
                        correct += 1;
                    }
                    total += 1;
                }
            }
            correct as f64 / total as f64
        };
        assert!(acc > 0.9, "accuracy too low: {acc}");
        assert!(tree.stats().depth >= 1);
    }

    #[test]
    fn naive_bayes_leaves_work_with_few_samples() {
        let schema = Schema::new(vec![AttributeSpec::numeric("x")], 2);
        let config = HoeffdingTreeConfig {
            leaf_prediction: LeafPrediction::NaiveBayes,
            ..HoeffdingTreeConfig::default()
        };
        let mut tree = HoeffdingTree::new(schema, config);
        // 30 samples: class 0 around 0, class 1 around 10 — far below the
        // grace period, so the tree is a single NB leaf.
        for i in 0..15 {
            tree.train(&vec![Value::Num(i as f64 * 0.1)], 0);
            tree.train(&vec![Value::Num(10.0 + i as f64 * 0.1)], 1);
        }
        assert_eq!(tree.stats().splits, 0);
        assert_eq!(tree.predict(&vec![Value::Num(0.5)]), 0);
        assert_eq!(tree.predict(&vec![Value::Num(10.5)]), 1);
    }

    #[test]
    fn nb_adaptive_tracks_the_better_strategy() {
        // Numeric Gaussian concept where NB shines with few samples per
        // leaf; NBAdaptive must match or beat plain majority class.
        let schema = Schema::new(vec![AttributeSpec::numeric("x")], 2);
        let adaptive = HoeffdingTreeConfig {
            leaf_prediction: LeafPrediction::NBAdaptive,
            ..HoeffdingTreeConfig::default()
        };
        let mut tree = HoeffdingTree::new(schema, adaptive);
        for i in 0..60 {
            tree.train(&vec![Value::Num(i as f64 * 0.1)], 0);
            tree.train(&vec![Value::Num(20.0 + i as f64 * 0.1)], 1);
        }
        // Far below the grace period: a single leaf, NB counters decide.
        assert_eq!(tree.predict(&vec![Value::Num(1.0)]), 0);
        assert_eq!(tree.predict(&vec![Value::Num(21.0)]), 1);
    }

    #[test]
    fn nb_adaptive_falls_back_to_majority_when_nb_flounders() {
        // A class-balanced coin-flip target: NB cannot beat majority, and
        // the adaptive leaf should not crash or degrade below majority.
        let schema = Schema::new(vec![AttributeSpec::categorical("c", 2)], 2);
        let mut tree = HoeffdingTree::new(
            schema,
            HoeffdingTreeConfig {
                leaf_prediction: LeafPrediction::NBAdaptive,
                grace_period: 1_000_000, // never split
                ..HoeffdingTreeConfig::default()
            },
        );
        let mut s = 5u32;
        for _ in 0..2_000 {
            s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            // Label mostly 1 regardless of the attribute.
            let label = u32::from(!s.is_multiple_of(10));
            tree.train(&vec![Value::Cat(s % 2)], label);
        }
        assert_eq!(tree.predict(&vec![Value::Cat(0)]), 1);
        assert_eq!(tree.predict(&vec![Value::Cat(1)]), 1);
    }

    #[test]
    fn pure_stream_never_splits() {
        let mut tree = HoeffdingTree::new(cat_schema(), HoeffdingTreeConfig::default());
        for i in 0..2_000u32 {
            tree.train(&vec![Value::Cat(i % 4), Value::Cat(i % 3)], 0);
        }
        assert_eq!(tree.stats().splits, 0, "pure stream must not split");
        assert_eq!(tree.predict(&vec![Value::Cat(0), Value::Cat(0)]), 0);
    }

    #[test]
    fn reset_clears_structure() {
        let mut tree = HoeffdingTree::new(cat_schema(), HoeffdingTreeConfig::default());
        for i in 0..3_000u32 {
            tree.train(
                &vec![Value::Cat(i % 4), Value::Cat(i % 3)],
                u32::from(i % 4 == 2),
            );
        }
        assert!(tree.stats().splits > 0);
        tree.reset();
        let s = tree.stats();
        assert_eq!((s.nodes, s.splits, s.instances_seen), (1, 0, 0));
    }

    #[test]
    fn max_depth_caps_growth() {
        let schema = Schema::new(
            vec![AttributeSpec::numeric("x"), AttributeSpec::numeric("y")],
            2,
        );
        let config = HoeffdingTreeConfig {
            max_depth: 1,
            ..HoeffdingTreeConfig::default()
        };
        let mut tree = HoeffdingTree::new(schema, config);
        let mut s = 3u32;
        for _ in 0..20_000 {
            s = s.wrapping_mul(134_775_813).wrapping_add(97);
            let x = f64::from(s >> 16) / f64::from(u16::MAX);
            let y = f64::from((s >> 4) & 0xFFF) / 4096.0;
            // XOR-ish concept would love depth 2+.
            let label = u32::from((x > 0.5) ^ (y > 0.5));
            tree.train(&vec![Value::Num(x), Value::Num(y)], label);
        }
        assert!(tree.stats().depth <= 1, "depth cap violated");
    }

    #[test]
    #[should_panic(expected = "invalid instance")]
    fn train_rejects_bad_instance() {
        let mut tree = HoeffdingTree::new(cat_schema(), HoeffdingTreeConfig::default());
        tree.train(&vec![Value::Num(0.0), Value::Cat(0)], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn train_rejects_bad_class() {
        let mut tree = HoeffdingTree::new(cat_schema(), HoeffdingTreeConfig::default());
        tree.train(&vec![Value::Cat(0), Value::Cat(0)], 9);
    }

    #[test]
    fn describe_renders_structure() {
        let mut tree = HoeffdingTree::new(cat_schema(), HoeffdingTreeConfig::default());
        // Untrained: a single leaf.
        let empty = tree.describe();
        assert!(empty.contains("leaf depth=0"));
        let mut x = 0u32;
        for _ in 0..5_000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let a = (x >> 8) % 4;
            tree.train(
                &vec![Value::Cat(a), Value::Cat((x >> 16) % 3)],
                u32::from(a == 1),
            );
        }
        let text = tree.describe();
        assert!(text.contains("split on a (categorical)"), "{text}");
        assert!(text.matches("leaf").count() >= 4, "{text}");
    }

    #[test]
    fn instances_seen_counts() {
        let mut tree = HoeffdingTree::new(cat_schema(), HoeffdingTreeConfig::default());
        for i in 0..10u32 {
            tree.train(&vec![Value::Cat(i % 4), Value::Cat(0)], 0);
        }
        assert_eq!(tree.instances_seen(), 10);
        assert_eq!(tree.stats().instances_seen, 10);
    }

    #[test]
    fn accuracy_improves_with_training() {
        // The §V-D claim in miniature: model accuracy rises as records stream in.
        let schema = Schema::new(
            vec![
                AttributeSpec::categorical("a", 3),
                AttributeSpec::numeric("x"),
            ],
            3,
        );
        let mut tree = HoeffdingTree::new(schema, HoeffdingTreeConfig::default());
        let mut s = 11u32;
        let mut gen = move || {
            s = s.wrapping_mul(747_796_405).wrapping_add(2_891_336_453);
            let a = (s >> 9) % 3;
            let x = f64::from(s >> 16) / f64::from(u16::MAX);
            let label = if a == 0 {
                0
            } else if x > 0.6 {
                1
            } else {
                2
            };
            (vec![Value::Cat(a), Value::Num(x)], label)
        };
        let eval = |tree: &HoeffdingTree, gen: &mut dyn FnMut() -> (Instance, u32)| {
            let mut ok = 0;
            for _ in 0..500 {
                let (inst, label) = gen();
                if tree.predict(&inst) == label {
                    ok += 1;
                }
            }
            ok as f64 / 500.0
        };
        let early = eval(&tree, &mut gen);
        for _ in 0..20_000 {
            let (inst, label) = gen();
            tree.train(&inst, label);
        }
        let late = eval(&tree, &mut gen);
        assert!(
            late > early + 0.2,
            "no learning progress: early={early} late={late}"
        );
        assert!(late > 0.9, "final accuracy too low: {late}");
    }
}
