//! Sufficient statistics kept at tree leaves.
//!
//! Each leaf maintains, per attribute, an *observer* summarizing the joint
//! distribution of attribute values and class labels seen at that leaf:
//!
//! * categorical attributes keep a `value × class` count table;
//! * numeric attributes keep one [`GaussianEstimator`] per class (mean /
//!   variance via Welford's algorithm) plus the observed value range.
//!
//! Observers can score candidate splits by information gain without ever
//! revisiting past instances — the property that makes VFDT single-pass.

use serde::{Deserialize, Serialize};

/// Per-class instance counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClassCounts {
    counts: Vec<f64>,
}

impl ClassCounts {
    /// Creates counts for `num_classes` classes, all zero.
    pub fn new(num_classes: u32) -> Self {
        ClassCounts {
            counts: vec![0.0; num_classes as usize],
        }
    }

    /// Adds `weight` observations of `class`.
    #[inline]
    pub fn add(&mut self, class: u32, weight: f64) {
        self.counts[class as usize] += weight;
    }

    /// Total observation weight.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Weight of `class`.
    pub fn get(&self, class: u32) -> f64 {
        self.counts[class as usize]
    }

    /// The class with the highest weight (ties break to the lowest index),
    /// or `None` if nothing was observed.
    pub fn majority(&self) -> Option<u32> {
        if self.total() <= 0.0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by(|(ai, a), (bi, b)| {
                a.partial_cmp(b)
                    // LINT-ALLOW(no-panic): class counts are non-negative integers cast to f64, always finite
                    .expect("counts are finite")
                    // Prefer the *lower* index on ties: max_by keeps the last
                    // maximal element, so order comparisons accordingly.
                    .then(bi.cmp(ai))
            })
            .map(|(i, _)| i as u32)
    }

    /// Shannon entropy of the class distribution, in bits.
    pub fn entropy(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        for &c in &self.counts {
            if c > 0.0 {
                let p = c / total;
                h -= p * p.log2();
            }
        }
        h
    }

    /// Number of classes with nonzero weight.
    pub fn distinct(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0.0).count()
    }

    /// Iterates over the raw per-class weights.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.counts.iter().copied()
    }

    /// Number of classes (including zero-weight ones).
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }
}

/// Weighted entropy of a partition: `Σ (n_i / n) · H(part_i)`.
pub fn partition_entropy(parts: &[ClassCounts]) -> f64 {
    let total: f64 = parts.iter().map(ClassCounts::total).sum();
    if total <= 0.0 {
        return 0.0;
    }
    parts.iter().map(|p| p.total() / total * p.entropy()).sum()
}

/// Incremental Gaussian (mean/variance) estimator using Welford's algorithm,
/// plus the min/max range of observed values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianEstimator {
    weight: f64,
    mean: f64,
    /// Sum of squared deviations (Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for GaussianEstimator {
    fn default() -> Self {
        GaussianEstimator {
            weight: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl GaussianEstimator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation of `value` with `weight`.
    pub fn add(&mut self, value: f64, weight: f64) {
        debug_assert!(value.is_finite() && weight > 0.0);
        self.weight += weight;
        let delta = value - self.mean;
        self.mean += delta * weight / self.weight;
        self.m2 += weight * delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observation weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Sample mean (0 if nothing observed).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 until two observations).
    pub fn variance(&self) -> f64 {
        if self.weight <= 1.0 {
            0.0
        } else {
            (self.m2 / (self.weight - 1.0)).max(0.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observed value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.weight > 0.0).then_some(self.min)
    }

    /// Maximum observed value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.weight > 0.0).then_some(self.max)
    }

    /// Estimated probability mass of this Gaussian below `t` (its CDF),
    /// treating a degenerate (zero-variance) Gaussian as a point mass.
    pub fn cdf(&self, t: f64) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let sd = self.std_dev();
        if sd <= f64::EPSILON {
            return if self.mean <= t { 1.0 } else { 0.0 };
        }
        normal_cdf((t - self.mean) / sd)
    }

    /// Estimated observation weight with values `<= t`.
    pub fn weight_below(&self, t: f64) -> f64 {
        self.weight * self.cdf(t)
    }

    /// Gaussian probability density at `x`, with a point-mass fallback used
    /// by naive-Bayes leaves for zero-variance attributes.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let sd = self.std_dev();
        if sd <= f64::EPSILON {
            // Point mass: use a narrow tolerance band around the mean.
            return if (x - self.mean).abs() < 1e-9 {
                1.0
            } else {
                1e-9
            };
        }
        let z = (x - self.mean) / sd;
        (-0.5 * z * z).exp() / (sd * (2.0 * std::f64::consts::PI).sqrt())
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (maximum absolute error ≈ 1.5e-7, plenty for split scoring).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_majority_and_entropy() {
        let mut c = ClassCounts::new(3);
        assert_eq!(c.majority(), None);
        assert_eq!(c.entropy(), 0.0);
        c.add(0, 1.0);
        c.add(1, 3.0);
        c.add(2, 0.0);
        assert_eq!(c.majority(), Some(1));
        assert_eq!(c.total(), 4.0);
        assert_eq!(c.distinct(), 2);
        // H(1/4, 3/4) ≈ 0.8113 bits.
        assert!((c.entropy() - 0.811_278).abs() < 1e-5);
    }

    #[test]
    fn majority_tie_breaks_low() {
        let mut c = ClassCounts::new(3);
        c.add(2, 2.0);
        c.add(0, 2.0);
        assert_eq!(c.majority(), Some(0));
    }

    #[test]
    fn entropy_uniform_is_log2() {
        let mut c = ClassCounts::new(4);
        for k in 0..4 {
            c.add(k, 5.0);
        }
        assert!((c.entropy() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partition_entropy_weights_parts() {
        let mut pure = ClassCounts::new(2);
        pure.add(0, 10.0);
        let mut mixed = ClassCounts::new(2);
        mixed.add(0, 5.0);
        mixed.add(1, 5.0);
        // 10 pure + 10 mixed ⇒ 0.5 * 0 + 0.5 * 1 = 0.5 bits.
        let h = partition_entropy(&[pure, mixed]);
        assert!((h - 0.5).abs() < 1e-12);
        assert_eq!(partition_entropy(&[]), 0.0);
    }

    #[test]
    fn gaussian_mean_variance() {
        let mut g = GaussianEstimator::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            g.add(v, 1.0);
        }
        assert!((g.mean() - 5.0).abs() < 1e-12);
        // Sample variance of that classic dataset is 32/7.
        assert!((g.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(g.min(), Some(2.0));
        assert_eq!(g.max(), Some(9.0));
    }

    #[test]
    fn gaussian_weighted_updates() {
        let mut a = GaussianEstimator::new();
        a.add(1.0, 2.0);
        a.add(3.0, 2.0);
        let mut b = GaussianEstimator::new();
        for v in [1.0, 1.0, 3.0, 3.0] {
            b.add(v, 1.0);
        }
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.variance() - b.variance()).abs() < 1e-9);
    }

    #[test]
    fn gaussian_cdf_behaviour() {
        let mut g = GaussianEstimator::new();
        for i in 0..100 {
            g.add(i as f64 % 10.0, 1.0);
        }
        assert!(g.cdf(-100.0) < 0.01);
        assert!(g.cdf(100.0) > 0.99);
        let at_mean = g.cdf(g.mean());
        assert!((at_mean - 0.5).abs() < 0.01);
    }

    #[test]
    fn degenerate_gaussian_is_point_mass() {
        let mut g = GaussianEstimator::new();
        g.add(5.0, 3.0);
        assert_eq!(g.variance(), 0.0);
        assert_eq!(g.cdf(4.9), 0.0);
        assert_eq!(g.cdf(5.0), 1.0);
        assert_eq!(g.weight_below(6.0), 3.0);
    }

    #[test]
    fn empty_gaussian() {
        let g = GaussianEstimator::new();
        assert_eq!(g.weight(), 0.0);
        assert_eq!(g.cdf(0.0), 0.0);
        assert_eq!(g.pdf(0.0), 0.0);
        assert_eq!(g.min(), None);
        assert_eq!(g.max(), None);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn pdf_peaks_at_mean() {
        let mut g = GaussianEstimator::new();
        for v in [-1.0, 0.0, 1.0, 0.0] {
            g.add(v, 1.0);
        }
        assert!(g.pdf(g.mean()) > g.pdf(g.mean() + 2.0));
    }
}
