//! Drift detection for the learning model (the §V-D retraining trigger).
//!
//! The paper retrains its model when "the increase in latency times or
//! overall error rate" says the model has gone stale. The standard
//! streaming formalization of that trigger is **DDM** (the Drift Detection
//! Method of Gama et al., 2004): track the online error rate `p` of the
//! model and its binomial deviation `s = sqrt(p(1−p)/n)`; remember the
//! best (`p_min + s_min`) the model has achieved; raise a *warning* when
//! `p + s > p_min + 2·s_min` and declare *drift* when
//! `p + s > p_min + 3·s_min`, at which point the model should be rebuilt.

use serde::{Deserialize, Serialize};

/// Detector verdict after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftState {
    /// The error rate is consistent with the best the model has shown.
    Stable,
    /// Error is elevated (`> p_min + 2 s_min`): start hedging (e.g. buffer
    /// records for a fresh model).
    Warning,
    /// Error is incompatible with the learned concept
    /// (`> p_min + 3 s_min`): retrain now.
    Drift,
}

/// DDM drift detector over a boolean error stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DdmDetector {
    /// Observations since the last reset.
    n: u64,
    /// Errors since the last reset.
    errors: u64,
    /// Best `p` seen (at its time of observation).
    p_min: f64,
    /// `s` at the time `p_min` was recorded.
    s_min: f64,
    /// Observations required before verdicts are issued (the error-rate
    /// estimate is meaningless on a handful of samples).
    min_observations: u64,
}

impl Default for DdmDetector {
    fn default() -> Self {
        Self::new(30)
    }
}

impl DdmDetector {
    /// Creates a detector that stays [`DriftState::Stable`] until
    /// `min_observations` records have been seen.
    pub fn new(min_observations: u64) -> Self {
        DdmDetector {
            n: 0,
            errors: 0,
            p_min: f64::INFINITY,
            s_min: f64::INFINITY,
            min_observations: min_observations.max(2),
        }
    }

    /// Observations since the last reset.
    pub fn observations(&self) -> u64 {
        self.n
    }

    /// Current online error rate (Laplace-smoothed so a perfect prefix
    /// cannot collapse the deviation to zero and hair-trigger the
    /// detector).
    pub fn error_rate(&self) -> f64 {
        (self.errors as f64 + 1.0) / (self.n as f64 + 2.0)
    }

    /// Feeds one prediction outcome (`true` = the model was wrong) and
    /// returns the verdict.
    pub fn observe(&mut self, error: bool) -> DriftState {
        self.n += 1;
        if error {
            self.errors += 1;
        }
        let p = self.error_rate();
        let s = (p * (1.0 - p) / self.n as f64).sqrt();
        if self.n < self.min_observations {
            return DriftState::Stable;
        }
        if p + s < self.p_min + self.s_min {
            self.p_min = p;
            self.s_min = s;
        }
        let level = p + s;
        if level > self.p_min + 3.0 * self.s_min {
            DriftState::Drift
        } else if level > self.p_min + 2.0 * self.s_min {
            DriftState::Warning
        } else {
            DriftState::Stable
        }
    }

    /// Forgets everything (call after retraining the model).
    pub fn reset(&mut self) {
        self.n = 0;
        self.errors = 0;
        self.p_min = f64::INFINITY;
        self.s_min = f64::INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_on_constant_low_error() {
        let mut d = DdmDetector::new(30);
        let mut s = 7u32;
        for _ in 0..2_000 {
            s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            // 5% error rate.
            let err = (s >> 16) % 100 < 5;
            assert_ne!(d.observe(err), DriftState::Drift, "false drift alarm");
        }
        assert!(d.error_rate() < 0.08);
    }

    #[test]
    fn detects_abrupt_degradation() {
        let mut d = DdmDetector::new(30);
        let mut s = 11u32;
        // Phase 1: 5% error.
        for _ in 0..1_000 {
            s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            d.observe((s >> 16) % 100 < 5);
        }
        // Phase 2: 60% error — must escalate to Drift.
        let mut saw_drift = false;
        for _ in 0..1_000 {
            s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            if d.observe((s >> 16) % 100 < 60) == DriftState::Drift {
                saw_drift = true;
                break;
            }
        }
        assert!(saw_drift, "degradation never detected");
    }

    #[test]
    fn warning_precedes_drift() {
        let mut d = DdmDetector::new(30);
        for _ in 0..500 {
            d.observe(false); // perfect model
        }
        // Slow degradation: warnings should appear before the hard drift.
        let mut states = Vec::new();
        let mut s = 13u32;
        for i in 0..2_000 {
            s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let err_pct = 2 + i / 40; // ramps up
            states.push(d.observe((s >> 16) % 100 < err_pct.min(90)));
        }
        let first_warning = states.iter().position(|&x| x == DriftState::Warning);
        let first_drift = states.iter().position(|&x| x == DriftState::Drift);
        let (Some(w), Some(dd)) = (first_warning, first_drift) else {
            panic!("ramp produced warning={first_warning:?} drift={first_drift:?}");
        };
        assert!(w < dd, "warning ({w}) must precede drift ({dd})");
    }

    #[test]
    fn silent_before_min_observations() {
        let mut d = DdmDetector::new(50);
        for _ in 0..49 {
            assert_eq!(d.observe(true), DriftState::Stable);
        }
    }

    #[test]
    fn reset_restores_stability() {
        let mut d = DdmDetector::new(10);
        for _ in 0..200 {
            d.observe(false);
        }
        for _ in 0..500 {
            if d.observe(true) == DriftState::Drift {
                break;
            }
        }
        d.reset();
        assert_eq!(d.observations(), 0);
        assert_eq!(d.observe(false), DriftState::Stable);
    }
}
