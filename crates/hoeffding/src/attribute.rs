//! Attribute schema and instances.

use serde::{Deserialize, Serialize};

/// Description of one attribute of the training instances.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttributeSpec {
    /// A categorical attribute with values `0..arity`.
    Categorical { name: String, arity: u32 },
    /// A real-valued attribute.
    Numeric { name: String },
}

impl AttributeSpec {
    /// Convenience constructor for a categorical attribute.
    pub fn categorical(name: &str, arity: u32) -> Self {
        assert!(arity >= 2, "categorical attribute needs arity >= 2");
        AttributeSpec::Categorical {
            name: name.to_owned(),
            arity,
        }
    }

    /// Convenience constructor for a numeric attribute.
    pub fn numeric(name: &str) -> Self {
        AttributeSpec::Numeric {
            name: name.to_owned(),
        }
    }

    /// The attribute's display name.
    pub fn name(&self) -> &str {
        match self {
            AttributeSpec::Categorical { name, .. } | AttributeSpec::Numeric { name } => name,
        }
    }
}

/// One attribute value of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Index into a categorical attribute's value set.
    Cat(u32),
    /// A numeric value.
    Num(f64),
}

impl Value {
    /// The categorical index; panics if the value is numeric.
    #[inline]
    pub fn as_cat(self) -> u32 {
        match self {
            Value::Cat(v) => v,
            // LINT-ALLOW(no-panic): observer/value type mismatch is a caller bug: the tree wires observers by schema
            Value::Num(_) => panic!("expected categorical value, found numeric"),
        }
    }

    /// The numeric value; panics if the value is categorical.
    #[inline]
    pub fn as_num(self) -> f64 {
        match self {
            Value::Num(v) => v,
            // LINT-ALLOW(no-panic): observer/value type mismatch is a caller bug: the tree wires observers by schema
            Value::Cat(_) => panic!("expected numeric value, found categorical"),
        }
    }
}

/// A training or prediction instance: one value per schema attribute.
pub type Instance = Vec<Value>;

/// The schema all instances of one tree share: the attribute list plus the
/// number of classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<AttributeSpec>,
    num_classes: u32,
}

impl Schema {
    /// Builds a schema. `num_classes` must be at least 2.
    pub fn new(attributes: Vec<AttributeSpec>, num_classes: u32) -> Self {
        assert!(
            !attributes.is_empty(),
            "schema needs at least one attribute"
        );
        assert!(num_classes >= 2, "schema needs at least two classes");
        Schema {
            attributes,
            num_classes,
        }
    }

    /// The attribute descriptions.
    pub fn attributes(&self) -> &[AttributeSpec] {
        &self.attributes
    }

    /// Number of attributes per instance.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of target classes.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// Checks that `instance` conforms to the schema (length, value kinds,
    /// categorical ranges). Returns a description of the first violation.
    pub fn validate(&self, instance: &Instance) -> Result<(), String> {
        if instance.len() != self.attributes.len() {
            return Err(format!(
                "instance has {} values, schema has {} attributes",
                instance.len(),
                self.attributes.len()
            ));
        }
        for (i, (v, spec)) in instance.iter().zip(&self.attributes).enumerate() {
            match (v, spec) {
                (Value::Cat(c), AttributeSpec::Categorical { arity, name }) => {
                    if c >= arity {
                        return Err(format!(
                            "attribute {i} ({name}): categorical value {c} out of range 0..{arity}"
                        ));
                    }
                }
                (Value::Num(n), AttributeSpec::Numeric { name }) => {
                    if !n.is_finite() {
                        return Err(format!("attribute {i} ({name}): non-finite value {n}"));
                    }
                }
                (Value::Num(_), AttributeSpec::Categorical { name, .. }) => {
                    return Err(format!("attribute {i} ({name}): expected categorical"));
                }
                (Value::Cat(_), AttributeSpec::Numeric { name }) => {
                    return Err(format!("attribute {i} ({name}): expected numeric"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                AttributeSpec::categorical("color", 3),
                AttributeSpec::numeric("size"),
            ],
            2,
        )
    }

    #[test]
    fn validate_accepts_conforming() {
        let s = schema();
        assert!(s.validate(&vec![Value::Cat(2), Value::Num(1.5)]).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_length() {
        let s = schema();
        assert!(s.validate(&vec![Value::Cat(0)]).is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_category() {
        let s = schema();
        let err = s
            .validate(&vec![Value::Cat(3), Value::Num(0.0)])
            .unwrap_err();
        assert!(err.contains("out of range"));
    }

    #[test]
    fn validate_rejects_kind_mismatch() {
        let s = schema();
        assert!(s.validate(&vec![Value::Num(0.0), Value::Num(0.0)]).is_err());
        assert!(s.validate(&vec![Value::Cat(0), Value::Cat(0)]).is_err());
    }

    #[test]
    fn validate_rejects_non_finite() {
        let s = schema();
        assert!(s
            .validate(&vec![Value::Cat(0), Value::Num(f64::NAN)])
            .is_err());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Cat(4).as_cat(), 4);
        assert_eq!(Value::Num(2.5).as_num(), 2.5);
    }

    #[test]
    #[should_panic(expected = "expected numeric")]
    fn as_num_panics_on_cat() {
        let _ = Value::Cat(1).as_num();
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn schema_rejects_single_class() {
        let _ = Schema::new(vec![AttributeSpec::numeric("x")], 1);
    }
}
