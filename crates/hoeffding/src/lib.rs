//! # hoeffding — a from-scratch Hoeffding tree (VFDT)
//!
//! LATEST's learning model (§V-B of the paper) is a Hoeffding tree — the
//! Very Fast Decision Tree of Domingos & Hulten (KDD 2000) — trained
//! incrementally on query-workload records. This crate implements the
//! algorithm with the paper's configuration:
//!
//! * **splitting criterion:** information gain;
//! * **leaf prediction:** majority class (naive-Bayes leaves are also
//!   available, see [`LeafPrediction`]);
//! * **split decision:** the Hoeffding bound
//!   `ε = sqrt(R² · ln(1/δ) / (2n))` decides when the observed best split
//!   is reliably better than the runner-up, so each training record is read
//!   at most once and the tree converges to the batch tree with high
//!   probability.
//!
//! Attributes may be categorical (finite arity) or numeric. Numeric
//! attributes use per-class Gaussian observers (the standard VFDT
//! approach): candidate binary thresholds are evaluated against the
//! Gaussian class models to score information gain.
//!
//! The implementation is dependency-free, deterministic, and `O(1)` per
//! training record (amortized), which is the property the paper relies on
//! for real-time streaming adaptation.

mod attribute;
mod bound;
mod drift;
mod stats;
mod tree;

pub use attribute::{AttributeSpec, Instance, Schema, Value};
pub use bound::hoeffding_bound;
pub use drift::{DdmDetector, DriftState};
pub use stats::{ClassCounts, GaussianEstimator};
pub use tree::{HoeffdingTree, HoeffdingTreeConfig, LeafPrediction, TreeStats};
