//! The repo lint pass: a hand-rolled line/token scanner enforcing four
//! repo-specific rules over all library crates (see `lint.toml` at the
//! workspace root for scope and budgets):
//!
//! * `no-panic` — no `.unwrap()` / `.expect(` / `panic!` / `todo!` in
//!   non-test library code. Surviving sites carry a
//!   `// LINT-ALLOW(no-panic): <justification>` marker and are counted
//!   against the checked-in budget, so the number can only shrink
//!   deliberately.
//! * `as-truncation` — no bare `as` casts to narrowing numeric types inside
//!   the hot kernels (`estimators/src/store.rs`, `exactdb/src/store.rs`,
//!   `exactdb/src/inverted.rs`): slot/generation packing bugs hide in
//!   silent truncation.
//! * `atomic-ordering` — every `Ordering::{Relaxed,Acquire,Release,AcqRel,
//!   SeqCst}` use must be accompanied by a nearby comment containing the
//!   word "ordering" explaining why that ordering is sufficient.
//! * `virtual-clock` — no `Instant::now()` / `SystemTime` in the stream
//!   data-path crates: window time is driven by object timestamps
//!   (`SlidingWindow::now`), never the wall clock, so replays are
//!   deterministic. The observability layer's instrumentation surface
//!   (`WallTimer` in `latest-core`) holds the one budgeted
//!   `LINT-ALLOW(virtual-clock)` site — real latency must be measured
//!   with a real clock, but every such measurement funnels through it.
//!
//! The scanner strips string literals and comments with a small state
//! machine (line comments, nested block comments, escaped strings, raw
//! strings, char literals vs. lifetimes) and skips `#[cfg(test)]` items by
//! brace matching — no external parser, by design.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::config::LintConfig;

/// All rules the pass knows about; `LINT-ALLOW` markers must name one.
pub const RULES: [&str; 4] = [
    "no-panic",
    "as-truncation",
    "atomic-ordering",
    "virtual-clock",
];

/// How many lines above an atomic-ordering use a rationale comment may sit.
const RATIONALE_WINDOW: usize = 10;
/// How many lines below a standalone `LINT-ALLOW` comment it may cover.
const ALLOW_REACH: usize = 3;
/// Justifications shorter than this are rejected as non-explanations.
const MIN_JUSTIFICATION: usize = 10;

/// One finding, printed as `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Aggregated result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// `LINT-ALLOW` markers that suppressed at least one finding, per rule.
    pub allows_used: BTreeMap<String, usize>,
    /// Budgets loaded from `lint.toml` (for the summary line).
    pub budgets: BTreeMap<String, usize>,
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lint the workspace rooted at `root` using `<root>/lint.toml`.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join("lint.toml");
    let cfg_text = fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = LintConfig::parse(&cfg_text)?;

    let mut report = Report::default();
    report.budgets.clone_from(&cfg.budgets);
    for file in collect_files(root, &cfg)? {
        let text = fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        lint_text(&rel, &text, &cfg, &mut report);
        report.files_scanned += 1;
    }
    enforce_budgets(&cfg, &mut report);
    Ok(report)
}

/// After all files are scanned, compare used allows against the budgets.
fn enforce_budgets(cfg: &LintConfig, report: &mut Report) {
    for (rule, used) in report.allows_used.clone() {
        let budget = cfg.budgets.get(&rule).copied().unwrap_or(0);
        if used > budget {
            report.diagnostics.push(Diagnostic {
                file: "lint.toml".into(),
                line: 0,
                rule: "budget",
                message: format!(
                    "{used} LINT-ALLOW({rule}) sites exceed the budget of {budget}; \
                     fix sites or raise the budget deliberately"
                ),
            });
        }
    }
}

pub fn print_report(report: &Report) {
    for d in &report.diagnostics {
        println!("{d}");
    }
    let mut summary: Vec<String> = Vec::new();
    for rule in RULES {
        let used = report.allows_used.get(rule).copied().unwrap_or(0);
        let budget = report.budgets.get(rule).copied().unwrap_or(0);
        summary.push(format!("{rule} {used}/{budget}"));
    }
    println!(
        "xtask lint: {} files scanned; allows used (per-rule, used/budget): {}",
        report.files_scanned,
        summary.join(", ")
    );
    if report.is_clean() {
        println!("xtask lint: clean");
    } else {
        println!(
            "xtask lint: FAILED ({} diagnostics)",
            report.diagnostics.len()
        );
    }
}

/// Enumerate `crates/*/src/**/*.rs`, skipping excluded crates, sorted for
/// deterministic diagnostics order.
fn collect_files(root: &Path, cfg: &LintConfig) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir error under crates/: {e}"))?;
        let crate_dir = entry.path();
        if !crate_dir.is_dir() {
            continue;
        }
        let rel = format!(
            "crates/{}",
            crate_dir.file_name().unwrap_or_default().to_string_lossy()
        );
        if cfg.exclude.iter().any(|e| e == &rel) {
            continue;
        }
        let src = crate_dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir error under {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Source scanning
// ---------------------------------------------------------------------------

/// One source line split into disjoint channels.
#[derive(Default)]
struct SrcLine {
    /// Code text with string literals blanked out.
    code: String,
    /// All comment text on the line (doc comments included) — used for
    /// ordering-rationale detection.
    comment: String,
    /// Non-doc comment text only — `LINT-ALLOW` markers are parsed from
    /// here, so *talking about* the marker syntax in rustdoc never counts
    /// as placing a marker.
    marker: String,
}

/// Per-line split of a source file into code / comment / marker channels.
fn split_code_comments(text: &str) -> Vec<SrcLine> {
    #[derive(PartialEq, Clone, Copy)]
    enum State {
        Normal,
        Line { doc: bool },
        Block { depth: u32, doc: bool },
        Str,
        RawStr(u32),
    }
    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut cur = SrcLine::default();
    let mut state = State::Normal;
    let mut i = 0usize;
    let push_comment = |cur: &mut SrcLine, c: char, doc: bool| {
        cur.comment.push(c);
        if !doc {
            cur.marker.push(c);
        }
    };
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            if matches!(state, State::Line { .. }) {
                state = State::Normal;
            }
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    let doc = matches!(chars.get(i + 2), Some('/' | '!'));
                    state = State::Line { doc };
                    i += 2 + usize::from(doc);
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    let doc = matches!(chars.get(i + 2), Some('*' | '!'));
                    state = State::Block { depth: 1, doc };
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    cur.code.push(' ');
                    i += 1;
                } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                    state = State::Str;
                    cur.code.push(' ');
                    i += 2;
                } else if c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')) {
                    // Possible raw string r"..", r#".."#, br".." — count hashes.
                    let mut j = i + 1 + usize::from(c == 'b');
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        cur.code.push(' ');
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs. lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        cur.code.push(' ');
                        i = (j + 1).min(chars.len());
                    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        cur.code.push(' ');
                        i += 3;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::Line { doc } => {
                push_comment(&mut cur, c, doc);
                i += 1;
            }
            State::Block { depth, doc } => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::Block {
                            depth: depth - 1,
                            doc,
                        }
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::Block {
                        depth: depth + 1,
                        doc,
                    };
                    i += 2;
                } else {
                    push_comment(&mut cur, c, doc);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped char, but let a line-continuation
                    // newline be handled by the top-of-loop line tracking.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else {
                    if c == '"' {
                        state = State::Normal;
                    }
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut k = 0u32;
                    while k < hashes && chars.get(j) == Some(&'#') {
                        k += 1;
                        j += 1;
                    }
                    if k == hashes {
                        state = State::Normal;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Find `pat` in `code` at a token boundary: when the pattern starts with an
/// identifier char (`panic!`, `SystemTime`), the char before the match must
/// not be part of an identifier (so `debug_panic!` never matches `panic!`).
/// Patterns starting with `.` need no boundary check.
fn has_token(code: &str, pat: &str) -> bool {
    let needs_boundary = pat.chars().next().is_some_and(is_ident_char);
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let abs = start + pos;
        let ok_before = !needs_boundary
            || abs == 0
            || !is_ident_char(code[..abs].chars().next_back().unwrap_or(' '));
        if ok_before {
            return true;
        }
        start = abs + pat.len();
    }
    false
}

/// Which per-line `#[cfg(test)]`-skipping mode the scanner is in.
enum TestSkip {
    Code,
    /// Saw a `#[cfg(test)]` attribute; waiting for the item it gates.
    PendingAttr,
    /// Inside the gated item; tracking brace depth until it closes.
    SkipItem {
        depth: i64,
        seen_brace: bool,
    },
}

/// Compute, per line, whether the line belongs to a `#[cfg(test)]` item and
/// should be exempt from all rules.
fn test_region_mask(lines: &[SrcLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut mode = TestSkip::Code;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        match mode {
            TestSkip::SkipItem {
                ref mut depth,
                ref mut seen_brace,
            } => {
                mask[idx] = true;
                for ch in code.chars() {
                    match ch {
                        '{' => {
                            *depth += 1;
                            *seen_brace = true;
                        }
                        '}' => *depth -= 1,
                        ';' if !*seen_brace && *depth == 0 => {
                            // Braceless item (e.g. `#[cfg(test)] use ...;`).
                            mode = TestSkip::Code;
                            break;
                        }
                        _ => {}
                    }
                }
                if let TestSkip::SkipItem { depth, seen_brace } = mode {
                    if seen_brace && depth <= 0 {
                        mode = TestSkip::Code;
                    }
                }
            }
            TestSkip::PendingAttr => {
                mask[idx] = true;
                let trimmed = code.trim();
                // Another attribute or a blank line: keep waiting for the item.
                if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                    mode = enter_skip(code);
                }
            }
            TestSkip::Code => {
                if let Some(pos) = code.find("cfg(test") {
                    mask[idx] = true;
                    // Text after the attribute's closing bracket, if the
                    // gated item starts on the same line.
                    let rest = code[pos..].find(']').map(|j| &code[pos + j + 1..]);
                    match rest {
                        Some(r) if !r.trim().is_empty() => mode = enter_skip(r),
                        _ => mode = TestSkip::PendingAttr,
                    }
                }
            }
        }
    }
    mask
}

/// Begin skipping an item whose first line of code is `code`.
fn enter_skip(code: &str) -> TestSkip {
    let mut depth = 0i64;
    let mut seen_brace = false;
    for ch in code.chars() {
        match ch {
            '{' => {
                depth += 1;
                seen_brace = true;
            }
            '}' => depth -= 1,
            ';' if !seen_brace && depth == 0 => return TestSkip::Code,
            _ => {}
        }
    }
    if seen_brace && depth <= 0 {
        TestSkip::Code
    } else {
        TestSkip::SkipItem { depth, seen_brace }
    }
}

/// A `LINT-ALLOW(rule): justification` marker parsed from a comment.
struct Allow {
    rule: String,
    /// 0-based line the marker suppresses findings on.
    covers: usize,
    /// 0-based line the marker itself sits on (for diagnostics).
    at: usize,
    used: bool,
}

/// Parse all allow markers in the file and resolve which line each covers.
fn collect_allows(rel: &str, lines: &[SrcLine], report: &mut Report) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let Some(pos) = line.marker.find("LINT-ALLOW(") else {
            continue;
        };
        let rest = &line.marker[pos + "LINT-ALLOW(".len()..];
        let Some(close) = rest.find(')') else {
            report.diagnostics.push(Diagnostic {
                file: rel.into(),
                line: idx + 1,
                rule: "lint-allow",
                message: "malformed LINT-ALLOW marker: missing `)`".into(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !RULES.contains(&rule.as_str()) {
            report.diagnostics.push(Diagnostic {
                file: rel.into(),
                line: idx + 1,
                rule: "lint-allow",
                message: format!("LINT-ALLOW names unknown rule `{rule}`"),
            });
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if justification.len() < MIN_JUSTIFICATION {
            report.diagnostics.push(Diagnostic {
                file: rel.into(),
                line: idx + 1,
                rule: "lint-allow",
                message: format!(
                    "LINT-ALLOW({rule}) needs a real justification after `:` \
                     (≥{MIN_JUSTIFICATION} chars)"
                ),
            });
            continue;
        }
        // Marker on a code line covers that line; a standalone comment
        // covers the next line bearing code, within ALLOW_REACH lines.
        let covers = if !code.trim().is_empty() {
            Some(idx)
        } else {
            (idx + 1..lines.len().min(idx + 1 + ALLOW_REACH))
                .find(|&j| !lines[j].code.trim().is_empty())
        };
        match covers {
            Some(covers) => allows.push(Allow {
                rule,
                covers,
                at: idx,
                used: false,
            }),
            None => report.diagnostics.push(Diagnostic {
                file: rel.into(),
                line: idx + 1,
                rule: "lint-allow",
                message: "dangling LINT-ALLOW: no code line within reach".into(),
            }),
        }
    }
    allows
}

/// Lint one file's text, appending findings to `report`.
pub fn lint_text(rel: &str, text: &str, cfg: &LintConfig, report: &mut Report) {
    let lines = split_code_comments(text);
    let skip = test_region_mask(&lines);
    let mut allows = collect_allows(rel, &lines, report);

    let truncation_scoped = cfg.truncation_files.iter().any(|f| f == rel);
    let clock_scoped = cfg
        .virtual_clock_paths
        .iter()
        .any(|p| rel.starts_with(p.as_str()));

    let emit = |report: &mut Report,
                allows: &mut Vec<Allow>,
                idx: usize,
                rule: &'static str,
                message: String| {
        if let Some(a) = allows
            .iter_mut()
            .find(|a| a.covers == idx && a.rule == rule)
        {
            a.used = true;
            return;
        }
        report.diagnostics.push(Diagnostic {
            file: rel.into(),
            line: idx + 1,
            rule,
            message,
        });
    };

    for (idx, line) in lines.iter().enumerate() {
        if skip[idx] {
            continue;
        }
        let code = &line.code;
        // no-panic
        for (pat, what) in [
            (".unwrap()", "`.unwrap()`"),
            (".expect(", "`.expect()`"),
            ("panic!", "`panic!`"),
            ("todo!", "`todo!`"),
        ] {
            if code.contains(pat) && has_token(code, pat) {
                emit(
                    report,
                    &mut allows,
                    idx,
                    "no-panic",
                    format!(
                        "{what} in library code: return a typed error or add \
                         `// LINT-ALLOW(no-panic): <why this cannot fail>`"
                    ),
                );
            }
        }
        // as-truncation (hot-kernel files only)
        if truncation_scoped {
            if let Some(target) = narrowing_cast(code, &cfg.narrow_types) {
                emit(
                    report,
                    &mut allows,
                    idx,
                    "as-truncation",
                    format!(
                        "bare `as {target}` narrowing cast in a hot kernel: use \
                         a checked conversion or add `// LINT-ALLOW(as-truncation): \
                         <why the value fits>`"
                    ),
                );
            }
        }
        // atomic-ordering
        if let Some(variant) = atomic_ordering_use(code) {
            // Same-line comments count too: the window is inclusive of idx.
            let has_rationale = (idx.saturating_sub(RATIONALE_WINDOW)..=idx)
                .any(|j| lines[j].comment.to_ascii_lowercase().contains("ordering"));
            if !has_rationale {
                emit(
                    report,
                    &mut allows,
                    idx,
                    "atomic-ordering",
                    format!(
                        "`Ordering::{variant}` without a nearby ordering-rationale \
                         comment: explain why this ordering is sufficient"
                    ),
                );
            }
        }
        // virtual-clock (stream data-path crates only)
        if clock_scoped {
            for pat in ["Instant::now", "SystemTime"] {
                if code.contains(pat) && has_token(code, pat) {
                    emit(
                        report,
                        &mut allows,
                        idx,
                        "virtual-clock",
                        format!(
                            "`{pat}` in a stream data-path crate: window time is \
                             virtual (driven by object timestamps), not wall-clock"
                        ),
                    );
                }
            }
        }
    }

    for a in &allows {
        if a.used {
            *report.allows_used.entry(a.rule.clone()).or_insert(0) += 1;
        } else {
            report.diagnostics.push(Diagnostic {
                file: rel.into(),
                line: a.at + 1,
                rule: "lint-allow",
                message: format!(
                    "unused LINT-ALLOW({}): no matching finding on the covered line",
                    a.rule
                ),
            });
        }
    }
}

/// Detect `as <narrow-type>` casts; returns the offending target type.
fn narrowing_cast<'a>(code: &str, narrow: &'a [String]) -> Option<&'a str> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find("as") {
        let abs = start + pos;
        start = abs + 2;
        let before_ok = abs == 0 || !is_ident_char(code[..abs].chars().next_back().unwrap_or(' '));
        let after_ok = bytes
            .get(abs + 2)
            .is_none_or(|&b| !is_ident_char(b as char));
        if !before_ok || !after_ok {
            continue;
        }
        // Read the next identifier token after the `as`.
        let rest = code[abs + 2..].trim_start();
        let token: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        if let Some(t) = narrow.iter().find(|t| t.as_str() == token) {
            return Some(t);
        }
    }
    None
}

/// Detect uses of `std::sync::atomic::Ordering` variants (lexically disjoint
/// from `cmp::Ordering`'s `Less`/`Equal`/`Greater`, so no false positives).
fn atomic_ordering_use(code: &str) -> Option<&'static str> {
    const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    let mut start = 0;
    while let Some(pos) = code[start..].find("Ordering::") {
        let abs = start + pos + "Ordering::".len();
        start = abs;
        let rest = &code[abs..];
        for v in VARIANTS {
            if rest.starts_with(v) && !rest[v.len()..].chars().next().is_some_and(is_ident_char) {
                return Some(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        LintConfig::parse(
            r#"
[budgets]
no-panic = 0
as-truncation = 0
atomic-ordering = 0
virtual-clock = 0

[as-truncation]
files = ["crates/hot/src/kernel.rs"]
narrow_types = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"]

[virtual-clock]
paths = ["crates/stream/src"]
"#,
        )
        .unwrap()
    }

    fn run(rel: &str, src: &str) -> Report {
        let mut report = Report::default();
        lint_text(rel, src, &cfg(), &mut report);
        report
    }

    fn rules(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn flags_unwrap_expect_panic_todo() {
        let r = run(
            "crates/a/src/lib.rs",
            "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"m\");\n    if a == 0 { panic!(\"boom\") }\n    todo!()\n}\n",
        );
        assert_eq!(rules(&r), ["no-panic", "no-panic", "no-panic", "no-panic"]);
        assert_eq!(r.diagnostics[0].line, 2);
        assert_eq!(r.diagnostics[3].line, 5);
    }

    #[test]
    fn ignores_panics_in_strings_and_comments() {
        let r = run(
            "crates/a/src/lib.rs",
            "// calling .unwrap() here would panic!\nfn f() -> &'static str {\n    \"don't .unwrap() or panic! or todo! in strings\"\n}\n/* block comment .expect( */\n",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn ignores_doctest_code_in_doc_comments() {
        let r = run(
            "crates/a/src/lib.rs",
            "/// ```\n/// let v = Some(1).unwrap();\n/// ```\nfn documented() {}\n",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let r = run(
            "crates/a/src/lib.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn skips_cfg_test_modules_and_items() {
        let src = "\
fn lib_code() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() {\n\
        Some(1).unwrap();\n\
        panic!(\"fine in tests\");\n\
    }\n\
}\n\
#[cfg(test)]\n\
fn helper() { Some(1).unwrap(); }\n\
fn after() { Some(1).unwrap(); }\n";
        let r = run("crates/a/src/lib.rs", src);
        assert_eq!(rules(&r), ["no-panic"]);
        assert_eq!(r.diagnostics[0].line, 12, "{:?}", r.diagnostics);
    }

    #[test]
    fn lint_allow_suppresses_and_is_counted() {
        let src = "\
fn f(x: Option<u32>) -> u32 {\n\
    // LINT-ALLOW(no-panic): x is checked non-empty by the caller contract\n\
    x.unwrap()\n\
}\n";
        let r = run("crates/a/src/lib.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.allows_used["no-panic"], 1);
    }

    #[test]
    fn same_line_lint_allow_works() {
        let src =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // LINT-ALLOW(no-panic): caller guarantees Some by construction\n";
        let r = run("crates/a/src/lib.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.allows_used["no-panic"], 1);
    }

    #[test]
    fn short_or_unknown_or_unused_allows_are_diagnosed() {
        let short = run(
            "crates/a/src/lib.rs",
            "// LINT-ALLOW(no-panic): ok\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert_eq!(rules(&short), ["lint-allow", "no-panic"]);

        let unknown = run(
            "crates/a/src/lib.rs",
            "// LINT-ALLOW(no-such-rule): a very long justification\nfn f() {}\n",
        );
        assert_eq!(rules(&unknown), ["lint-allow"]);

        let unused = run(
            "crates/a/src/lib.rs",
            "// LINT-ALLOW(no-panic): nothing here actually panics at all\nfn f() {}\n",
        );
        assert_eq!(rules(&unused), ["lint-allow"]);
    }

    #[test]
    fn doc_comments_never_carry_allow_markers_but_do_carry_rationale() {
        // Rustdoc *describing* the marker syntax must not count as a marker.
        let doc = "/// Use `// LINT-ALLOW(no-panic): why` to justify a site.\nfn f() {}\n//! module doc: LINT-ALLOW(as-truncation): not a marker either\n";
        assert!(run("crates/a/src/lib.rs", doc).is_clean());
        // ...but a doc comment can still satisfy the ordering-rationale rule.
        let atomic = "/// Relaxed ordering: pure statistic, nothing synchronizes on it.\nfn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(run("crates/a/src/lib.rs", atomic).is_clean());
    }

    #[test]
    fn narrowing_casts_flagged_only_in_hot_files() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\n";
        assert_eq!(
            rules(&run("crates/hot/src/kernel.rs", src)),
            ["as-truncation"]
        );
        assert!(run("crates/cold/src/lib.rs", src).is_clean());
        // Widening casts stay allowed even in hot files.
        let widen = "fn f(x: u32) -> u64 { x as u64 }\nfn g(x: u32) -> usize { x as usize }\n";
        assert!(run("crates/hot/src/kernel.rs", widen).is_clean());
    }

    #[test]
    fn atomic_ordering_needs_rationale_comment() {
        let bare = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(
            rules(&run("crates/a/src/lib.rs", bare)),
            ["atomic-ordering"]
        );

        let with = "\
// Relaxed ordering: the counter is a statistic; nothing synchronizes on it.\n\
fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(run("crates/a/src/lib.rs", with).is_clean());

        // cmp::Ordering variants must not trip the rule.
        let cmp =
            "fn f(a: u32, b: u32) -> Ordering { a.cmp(&b) }\nconst X: Ordering = Ordering::Less;\n";
        assert!(run("crates/a/src/lib.rs", cmp).is_clean());
    }

    #[test]
    fn virtual_clock_scoped_to_data_path_crates() {
        let src = "fn f() { let t = Instant::now(); let _ = t; }\nfn g() -> SystemTime { SystemTime::now() }\n";
        let r = run("crates/stream/src/window.rs", src);
        assert_eq!(rules(&r), ["virtual-clock", "virtual-clock"]);
        assert!(run("crates/other/src/lib.rs", src).is_clean());
    }

    #[test]
    fn virtual_clock_allow_covers_the_instrumentation_surface() {
        // The observability layer's budgeted wall-clock read: a justified
        // allow marker for the virtual-clock rule silences the finding and
        // is counted against the [budgets] cap (`lint.toml` grants exactly
        // one, for `WallTimer::start`).
        let src = "\
fn start() -> Instant {\n\
    // LINT-ALLOW(virtual-clock): budgeted instrumentation-surface read; stream time stays virtual\n\
    Instant::now()\n\
}\n";
        let r = run("crates/stream/src/obsv.rs", src);
        assert!(
            r.is_clean(),
            "justified allow must silence the finding: {:?}",
            r.diagnostics
        );
        assert_eq!(r.allows_used.get("virtual-clock"), Some(&1));
        // Outside the scoped paths the marker is dangling (unused) — the
        // allow must not grant wall-clock reads where the rule is off.
        let off = run("crates/other/src/lib.rs", src);
        assert!(!off.is_clean(), "unused allow must be flagged off-scope");
    }

    #[test]
    fn raw_strings_and_char_literals_do_not_confuse_the_scanner() {
        let src = "\
fn f() -> char { '\"' }\n\
fn g() -> &'static str { r#\"panic! .unwrap() \"#}\n\
fn h<'a>(x: &'a str) -> &'a str { x }\n\
fn bad(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = run("crates/a/src/lib.rs", src);
        assert_eq!(rules(&r), ["no-panic"]);
        assert_eq!(r.diagnostics[0].line, 4);
    }

    #[test]
    fn multiline_string_spanning_lines_is_blanked() {
        let src = "const S: &str = \"line one .unwrap()\n line two panic! \";\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = run("crates/a/src/lib.rs", src);
        assert_eq!(rules(&r), ["no-panic"]);
        assert_eq!(r.diagnostics[0].line, 3);
    }

    /// Acceptance-criterion self-test: an unjustified `.unwrap()` introduced
    /// into a library crate makes the workspace lint fail with a file:line
    /// diagnostic and a nonzero-style (non-clean) report.
    #[test]
    fn workspace_lint_fails_on_unjustified_unwrap() {
        let root = std::env::temp_dir().join(format!(
            "xtask-lint-selftest-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let src_dir = root.join("crates/demo/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(root.join("lint.toml"), "[budgets]\nno-panic = 0\n").unwrap();
        std::fs::write(
            src_dir.join("lib.rs"),
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        )
        .unwrap();

        let report = lint_workspace(&root).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.file, "crates/demo/src/lib.rs");
        assert_eq!(d.line, 2);
        assert_eq!(d.rule, "no-panic");
        // file:line formatting used by CI annotations
        assert!(d
            .to_string()
            .starts_with("crates/demo/src/lib.rs:2: [no-panic]"));

        // Justifying the site under a budget of 1 turns the tree clean.
        std::fs::write(
            src_dir.join("lib.rs"),
            "pub fn f(x: Option<u32>) -> u32 {\n    // LINT-ALLOW(no-panic): caller contract guarantees Some here\n    x.unwrap()\n}\n",
        )
        .unwrap();
        std::fs::write(root.join("lint.toml"), "[budgets]\nno-panic = 1\n").unwrap();
        let report = lint_workspace(&root).unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.allows_used["no-panic"], 1);

        // ...but exceeding the checked-in budget fails again.
        std::fs::write(root.join("lint.toml"), "[budgets]\nno-panic = 0\n").unwrap();
        let report = lint_workspace(&root).unwrap();
        assert!(!report.is_clean());
        assert!(report.diagnostics.iter().any(|d| d.rule == "budget"));

        std::fs::remove_dir_all(&root).unwrap();
    }
}
