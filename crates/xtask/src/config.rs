//! `lint.toml` loader.
//!
//! A deliberately tiny TOML-subset parser (sections, `key = <int>`,
//! `key = ["str", ...]`, `#` comments) so the lint pass stays
//! dependency-free. Unknown sections or keys are hard errors: the config is
//! checked in, so typos should fail loudly instead of silently relaxing a
//! rule.

use std::collections::BTreeMap;

/// Parsed contents of `lint.toml`.
#[derive(Debug, Default, Clone)]
pub struct LintConfig {
    /// Max number of `LINT-ALLOW(<rule>)` sites permitted per rule.
    /// Rules absent from the map get a budget of zero.
    pub budgets: BTreeMap<String, usize>,
    /// Workspace-relative crate directories excluded from scanning
    /// (benches and other non-library code).
    pub exclude: Vec<String>,
    /// Workspace-relative files subject to the `as-truncation` rule
    /// (the hot kernels).
    pub truncation_files: Vec<String>,
    /// Cast-target type names considered narrowing in those files.
    pub narrow_types: Vec<String>,
    /// Workspace-relative directory prefixes where wall-clock reads are
    /// banned (virtual-clock discipline).
    pub virtual_clock_paths: Vec<String>,
}

impl LintConfig {
    /// Parse the TOML-subset text. Returns a human-readable error with a
    /// line number on malformed input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = LintConfig::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let mut line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            // Multi-line arrays: accumulate until the closing bracket.
            while line.contains('[') && !line.starts_with('[') && !line.trim_end().ends_with(']') {
                match lines.next() {
                    Some((_, cont)) => {
                        line.push(' ');
                        line.push_str(strip_comment(cont).trim());
                    }
                    None => {
                        return Err(format!("lint.toml:{lineno}: unterminated array"));
                    }
                }
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "budgets" | "scope" | "as-truncation" | "virtual-clock" => {}
                    other => return Err(format!("lint.toml:{lineno}: unknown section [{other}]")),
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            let key = key.trim();
            let value = value.trim();
            match (section.as_str(), key) {
                ("budgets", rule) => {
                    let n: usize = value.parse().map_err(|_| {
                        format!("lint.toml:{lineno}: budget for `{rule}` must be an integer")
                    })?;
                    cfg.budgets.insert(rule.to_string(), n);
                }
                ("scope", "exclude") => cfg.exclude = parse_string_array(value, lineno)?,
                ("as-truncation", "files") => {
                    cfg.truncation_files = parse_string_array(value, lineno)?;
                }
                ("as-truncation", "narrow_types") => {
                    cfg.narrow_types = parse_string_array(value, lineno)?;
                }
                ("virtual-clock", "paths") => {
                    cfg.virtual_clock_paths = parse_string_array(value, lineno)?;
                }
                (sec, key) => {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown key `{key}` in [{sec}]"
                    ));
                }
            }
        }
        Ok(cfg)
    }
}

/// Strip a trailing `#` comment, respecting (single-line) string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `["a", "b", ...]` (trailing comma tolerated).
fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a `[\"...\"]` array"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let s = item
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("lint.toml:{lineno}: array items must be quoted strings"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = LintConfig::parse(
            r#"
# comment
[budgets]
no-panic = 12
as-truncation = 3   # trailing comment

[scope]
exclude = ["crates/bench"]

[as-truncation]
files = ["a.rs", "b.rs",]
narrow_types = ["u32", "f32"]

[virtual-clock]
paths = ["crates/estimators/src"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.budgets["no-panic"], 12);
        assert_eq!(cfg.budgets["as-truncation"], 3);
        assert_eq!(cfg.exclude, ["crates/bench"]);
        assert_eq!(cfg.truncation_files, ["a.rs", "b.rs"]);
        assert_eq!(cfg.narrow_types, ["u32", "f32"]);
        assert_eq!(cfg.virtual_clock_paths, ["crates/estimators/src"]);
    }

    #[test]
    fn rejects_unknown_section_and_key() {
        assert!(LintConfig::parse("[nope]\n").is_err());
        assert!(LintConfig::parse("[scope]\nincluded = []\n").is_err());
        assert!(LintConfig::parse("[budgets]\nno-panic = many\n").is_err());
    }

    #[test]
    fn multiline_arrays_accumulate() {
        let cfg =
            LintConfig::parse("[as-truncation]\nfiles = [\n  \"a.rs\",  # hot\n  \"b.rs\",\n]\n")
                .unwrap();
        assert_eq!(cfg.truncation_files, ["a.rs", "b.rs"]);
        assert!(LintConfig::parse("[as-truncation]\nfiles = [\n  \"a.rs\",\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = LintConfig::parse("[scope]\nexclude = [\"crates/a#b\"]\n").unwrap();
        assert_eq!(cfg.exclude, ["crates/a#b"]);
    }
}
