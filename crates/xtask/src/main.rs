//! `cargo xtask` — repo-local developer tooling.
//!
//! The only subcommand today is `lint`, a hand-rolled static-analysis pass
//! over the workspace's library crates. It has zero dependencies on purpose:
//! it must build and run offline, instantly, in every CI job.
//!
//! ```text
//! cargo xtask lint              # lint the workspace this binary lives in
//! cargo xtask lint --root DIR   # lint another tree (used by the self-tests)
//! ```
//!
//! Exit status is 0 when the tree is clean under the checked-in `lint.toml`
//! budget and 1 when any diagnostic fires. Diagnostics are `file:line:
//! [rule] message` so editors and CI annotations can jump to them.

use std::path::PathBuf;
use std::process::ExitCode;

mod config;
mod lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("xtask: error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Dispatch the subcommand. Returns `Ok(true)` when the run succeeded and
/// the tree is clean, `Ok(false)` when diagnostics fired.
fn run(args: &[String]) -> Result<bool, String> {
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return Err("missing subcommand".into());
    };
    match cmd.as_str() {
        "lint" => {
            let root = parse_root(&args[1..])?;
            let report = lint::lint_workspace(&root)?;
            lint::print_report(&report);
            Ok(report.is_clean())
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "usage: cargo xtask <command>\n\n\
commands:\n  \
lint [--root DIR]   run the repo lint pass (rules + budget in lint.toml)\n  \
help                show this message";

/// Parse `--root DIR` (defaults to the workspace that built this binary).
fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    let mut it = args.iter();
    let mut root: Option<PathBuf> = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return Err("--root requires a directory argument".into()),
            },
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    match root {
        Some(r) => Ok(r),
        // CARGO_MANIFEST_DIR is crates/xtask; the workspace root is two up.
        None => {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            match manifest.parent().and_then(|p| p.parent()) {
                Some(ws) => Ok(ws.to_path_buf()),
                None => Err("cannot locate workspace root from CARGO_MANIFEST_DIR".into()),
            }
        }
    }
}
