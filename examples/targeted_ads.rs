//! Targeted advertising: gauge product-keyword popularity per metro area
//! in real time (the paper's second motivating application, §I).
//!
//! An ad platform wants to know, for each candidate metro, roughly how
//! many recent posts mention a product keyword — cheap estimates decide
//! where to spend, exact counting would be wasteful. This example ranks
//! metros by estimated keyword popularity and shows the estimation error
//! LATEST actually incurred against the system logs.
//!
//! ```text
//! cargo run --release -p latest-core --example targeted_ads
//! ```

use geostream::synth::DatasetSpec;
#[allow(unused_imports)]
use geostream::synth::KeywordModel;
use geostream::{Duration, KeywordId, Point, RcDvq, Rect};
use latest_core::{Latest, LatestConfig, PhaseTag, QueryOptions};
use rand::SeedableRng;

fn main() {
    let dataset = DatasetSpec::twitter();
    let mut objects = dataset.generator();

    // Candidate metro areas: the synthetic stream concentrates around its
    // own hotspot mixture, so the campaign targets the six densest
    // synthetic "metros".
    let metro_names = [
        "Metro A", "Metro B", "Metro C", "Metro D", "Metro E", "Metro F",
    ];
    let metros: Vec<(&str, f64, f64)> = dataset
        .spatial_model()
        .hotspots()
        .iter()
        .take(6)
        .zip(metro_names)
        .map(|(h, name)| (name, h.center.x, h.center.y))
        .collect();
    // "Product keywords" are chosen at campaign time from the currently
    // trending vocabulary — the synthetic stream has topical drift, so
    // yesterday's hot hashtags go cold (§I's churn phenomenon).
    let keyword_model = dataset.keyword_model();

    let config = LatestConfig::builder()
        .window_span(Duration::from_secs(90))
        .warmup(Duration::from_secs(90))
        .pretrain_queries(180)
        .estimator_config(estimators::EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 5_000,
            ..estimators::EstimatorConfig::default()
        })
        .build()
        .expect("demo parameters are in range");
    let mut latest = Latest::new(config);

    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(objects.next_object());
    }
    // Pre-train on the exact query shape the campaign dashboard issues.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xad5);
    let mut i = 0usize;
    while latest.phase() == PhaseTag::PreTraining {
        for _ in 0..20 {
            latest.ingest(objects.next_object());
        }
        let (_, x, y) = metros[i % metros.len()];
        let kw = keyword_model.sample_keywords(&mut rng, latest.now(), 1)[0];
        let area = Rect::centered_clamped(Point::new(x, y), 1.5, 1.2, &dataset.domain);
        let _ = latest.query(&RcDvq::hybrid(area, vec![kw]), QueryOptions::new());
        i += 1;
    }

    // Let the stream settle, then pick three trending product keywords and
    // rank metros for each.
    for _ in 0..20_000 {
        latest.ingest(objects.next_object());
    }
    let product_names = ["sneakers", "headphones", "espresso"];
    let mut used: std::collections::HashSet<KeywordId> = std::collections::HashSet::new();
    let products: Vec<(&str, KeywordId)> = product_names
        .iter()
        .map(|name| {
            // The most frequent term among a batch of draws is a currently
            // trending one (low ids are not: topical drift rotates the hot
            // band through the vocabulary).
            let mut counts = std::collections::HashMap::new();
            for _ in 0..64 {
                let k = keyword_model.sample_keywords(&mut rng, latest.now(), 1)[0];
                *counts.entry(k).or_insert(0usize) += 1;
            }
            let kw = counts
                .into_iter()
                .filter(|(k, _)| !used.contains(k))
                .max_by_key(|&(k, c)| (c, std::cmp::Reverse(k.0)))
                .map(|(k, _)| k)
                .expect("draws");
            used.insert(kw);
            (*name, kw)
        })
        .collect();
    for (product, kw) in &products {
        println!(
            "product '{product}' (kw{}): estimated mentions per metro",
            kw.0
        );
        let mut rows = Vec::new();
        for (name, x, y) in &metros {
            let area = Rect::centered_clamped(Point::new(*x, *y), 1.5, 1.2, &dataset.domain);
            let out = latest.query(&RcDvq::hybrid(area, vec![*kw]), QueryOptions::new());
            rows.push((*name, out.estimate, out.actual, out.estimator));
            // Keep the stream moving between queries.
            for _ in 0..200 {
                latest.ingest(objects.next_object());
            }
        }
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite estimates"));
        for (rank, (name, est, actual, estimator)) in rows.iter().enumerate() {
            println!(
                "  #{:<2} {:<12} est {:>7.0}  (actual {:>5}, via {})",
                rank + 1,
                name,
                est,
                actual,
                estimator
            );
        }
        println!();
    }

    println!(
        "mean estimation accuracy across the campaign: {:.3}",
        latest.log().mean_incremental_accuracy().unwrap_or(f64::NAN)
    );
}
