//! Sharded serving: run LATEST across worker shards with scatter-gather
//! queries, then front it with the [`ServingEngine`] thread pool the way
//! a service endpoint would.
//!
//! ```text
//! cargo run --release -p latest-core --example sharded_serving
//! ```
//!
//! The stream is partitioned across four shards, each owning its own
//! window, estimator pool, adaptor, and selectivity cache on a dedicated
//! worker thread. Queries fan out to the shards the router says can hold
//! matching objects and the per-shard counts merge into one answer.

use estimators::EstimatorConfig;
use geostream::synth::DatasetSpec;
use geostream::{KeywordId, Point, RcDvq, Rect};
use latest_core::{
    LatestConfig, LatestError, PhaseTag, QueryOptions, RouterPolicy, ServingEngine, ShardConfig,
    ShardedLatest,
};
use std::sync::Arc;

fn main() {
    let dataset = DatasetSpec::twitter();
    let config = LatestConfig::builder()
        .window_span(geostream::Duration::from_secs(60))
        .warmup(geostream::Duration::from_secs(60))
        .pretrain_queries(60)
        .estimator_config(EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 4_000,
            ..EstimatorConfig::default()
        })
        // Four shards, partitioned by longitude strip: spatial queries
        // touch only the strips their rectangle overlaps, keyword
        // queries fan out everywhere.
        .shard(ShardConfig {
            shards: 4,
            queue_capacity: 8_192,
            router: RouterPolicy::SpatialTile,
        })
        .build()
        .expect("demo parameters are in range");

    println!("spawning {} shard workers…", config.shard.shards);
    let engine = Arc::new(ShardedLatest::new(config).expect("shard threads spawn"));

    // Batched ingest: the router partitions each batch and every shard
    // advances to the batch's horizon, so windows stay aligned even on
    // shards that received nothing.
    let mut gen = dataset.generator();
    loop {
        let batch: Vec<_> = (0..512).map(|_| gen.next_object()).collect();
        engine.ingest_batch(&batch).expect("shards are live");
        let snap = engine.metrics_snapshot().expect("shards are live");
        if snap.phase != PhaseTag::WarmUp {
            println!(
                "warm-up done: {} live objects across {} shards",
                snap.window.occupancy,
                engine.shards()
            );
            break;
        }
    }

    // Drive every shard through pre-training with fanned-out queries.
    let hotspots: Vec<Point> = dataset
        .spatial_model()
        .hotspots()
        .iter()
        .take(8)
        .map(|h| h.center)
        .collect();
    let mut i = 0u32;
    loop {
        let c = hotspots[i as usize % hotspots.len()];
        let area = Rect::centered_clamped(c, 2.0, 1.5, &dataset.domain);
        let q = match i % 3 {
            0 => RcDvq::spatial(area),
            1 => RcDvq::keyword(vec![KeywordId(i % 40)]),
            _ => RcDvq::hybrid(area, vec![KeywordId(i % 40)]),
        };
        let out = engine
            .query(&q, QueryOptions::new())
            .expect("shards are live");
        i += 1;
        if out.phase == PhaseTag::Incremental {
            break;
        }
    }
    println!("pre-training finished after {i} queries; serving clients…\n");

    // The thread-pool front door: clients submit query batches and poll
    // or wait for tickets. A full submission queue surfaces as
    // `WouldBlock` — callers shed load explicitly, nothing drops
    // silently.
    let serving = ServingEngine::new(Arc::clone(&engine), 2, 64).expect("pool threads spawn");
    let mut tickets = Vec::new();
    let mut shed = 0u32;
    for round in 0..48u32 {
        let c = hotspots[round as usize % hotspots.len()];
        let area = Rect::centered_clamped(c, 2.0, 1.5, &dataset.domain);
        let batch = vec![
            RcDvq::spatial(area),
            RcDvq::keyword(vec![KeywordId(round % 40)]),
            RcDvq::hybrid(area, vec![KeywordId(round % 40)]),
        ];
        match serving.submit(batch, QueryOptions::new()) {
            Ok(ticket) => tickets.push(ticket),
            Err(LatestError::WouldBlock) => shed += 1,
            Err(e) => panic!("serving engine failed: {e}"),
        }
        // Interleave fresh arrivals so the shards keep churning.
        let arrivals: Vec<_> = (0..64).map(|_| gen.next_object()).collect();
        engine.ingest_batch(&arrivals).expect("shards are live");
    }
    let mut acc_sum = 0.0;
    let mut answered = 0usize;
    for ticket in tickets {
        for out in serving.wait(ticket).expect("shards are live") {
            acc_sum += out.accuracy;
            answered += 1;
        }
    }
    println!(
        "served {answered} queries (shed {shed} on backpressure), mean accuracy {:.3}",
        acc_sum / answered.max(1) as f64
    );

    // One merged snapshot covers the whole fleet: counters sum,
    // histograms add bucket-wise, phase reports the least-advanced shard.
    let snap = engine.metrics_snapshot().expect("shards are live");
    println!(
        "fleet totals: {} queries, {} live objects, {} ingested, {} evicted",
        snap.queries_total, snap.window.occupancy, snap.window.ingested, snap.window.evicted
    );
    let served = serving.shutdown();
    let engine = Arc::try_unwrap(engine).expect("serving pool released its handle");
    let ingested = engine.shutdown();
    println!("pool served {served} batches; shards ingested {ingested} objects");
}
