//! Disaster monitoring: the paper's motivating scenario (§I).
//!
//! First responders estimate, in real time, how many stream posts mention
//! "fire" inside an affected area to size the response. This example
//! simulates a fire event: a burst of posts with the incident keyword
//! appears inside one hotspot, and repeated RC-DVQ estimation queries
//! track the affected population while LATEST keeps the estimator choice
//! appropriate.
//!
//! ```text
//! cargo run --release -p latest-core --example disaster_monitoring
//! ```

use geostream::synth::DatasetSpec;
use geostream::{Duration, GeoTextObject, KeywordId, ObjectId, Point, RcDvq, Rect};
use latest_core::{Latest, LatestConfig, PhaseTag, QueryOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The interned id we reserve for the incident keyword ("fire").
const FIRE: KeywordId = KeywordId(7);

fn main() {
    let dataset = DatasetSpec::twitter();
    let mut background = dataset.generator();
    let mut rng = StdRng::seed_from_u64(0xf12e);

    // The affected area: a box around one metro hotspot.
    let incident_center = Point::new(-118.9, 34.2); // Thousand Oaks-ish
    let affected = Rect::centered_clamped(incident_center, 1.2, 0.9, &dataset.domain);

    let config = LatestConfig::builder()
        .window_span(Duration::from_secs(90))
        .warmup(Duration::from_secs(90))
        .pretrain_queries(150)
        .estimator_config(estimators::EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 5_000,
            ..estimators::EstimatorConfig::default()
        })
        .build()
        .expect("demo parameters are in range");
    let mut latest = Latest::new(config);

    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(background.next_object());
    }

    // Pre-train with the kind of estimation queries responders issue.
    let mut n = 0u32;
    while latest.phase() == PhaseTag::PreTraining {
        for _ in 0..20 {
            latest.ingest(background.next_object());
        }
        let q = if n.is_multiple_of(2) {
            RcDvq::hybrid(affected, vec![FIRE])
        } else {
            RcDvq::spatial(affected)
        };
        let _ = latest.query(&q, QueryOptions::new());
        n += 1;
    }

    println!("monitoring '{affected:?}' for incident keyword…\n");
    println!("minute  est. affected  actual  accuracy  estimator");

    // Simulate 10 \"minutes\": the fire starts at minute 3 and burns until
    // minute 7 — during the event, extra posts carrying FIRE appear inside
    // the affected box.
    let mut next_oid = 10_000_000u64;
    for minute in 0..10u32 {
        let event_active = (3..7).contains(&minute);
        for _ in 0..1_500 {
            latest.ingest(background.next_object());
            if event_active && rng.gen_bool(0.12) {
                // Incident post: inside the box, mentions the keyword.
                let x = rng.gen_range(affected.min_x..affected.max_x);
                let y = rng.gen_range(affected.min_y..affected.max_y);
                let obj = GeoTextObject::new(
                    ObjectId(next_oid),
                    Point::new(x, y),
                    vec![FIRE, KeywordId(rng.gen_range(100..200))],
                    latest.now(),
                );
                next_oid += 1;
                latest.ingest(obj);
            }
        }
        let out = latest.query(&RcDvq::hybrid(affected, vec![FIRE]), QueryOptions::new());
        println!(
            "{minute:>6}  {:>13.0}  {:>6}  {:>8.2}  {}{}",
            out.estimate,
            out.actual,
            out.accuracy,
            out.estimator,
            if event_active {
                "   << FIRE ACTIVE"
            } else {
                ""
            }
        );
    }

    println!(
        "\nestimates tracked the burst and decay; switches performed: {}",
        latest.log().switches.len()
    );
}
