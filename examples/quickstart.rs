//! Quickstart: stand up a LATEST instance on a synthetic geo-textual
//! stream and ask it selectivity questions.
//!
//! ```text
//! cargo run --release -p latest-core --example quickstart
//! ```

use geostream::synth::DatasetSpec;
use geostream::{Duration, KeywordId, Point, RcDvq, Rect};
use latest_core::{Latest, LatestConfig, PhaseTag, QueryOptions};

fn main() {
    // A Twitter-like synthetic stream: hotspot-clustered geotagged posts
    // with Zipf-distributed keywords.
    let dataset = DatasetSpec::twitter();
    let mut objects = dataset.generator();

    // LATEST sized for a quick demo: a 60-second window, short
    // pre-training, and the RSH sampler as the default estimator. The
    // builder validates every parameter domain up front. `.shard(...)`
    // stays at its single-shard default here — see the `sharded_serving`
    // example for partitioning the stream across worker threads.
    let config = LatestConfig::builder()
        .window_span(Duration::from_secs(60))
        .warmup(Duration::from_secs(60))
        .pretrain_queries(120)
        .shard(latest_core::ShardConfig::default())
        .estimator_config(estimators::EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 5_000,
            ..estimators::EstimatorConfig::default()
        })
        .build()
        .expect("demo parameters are in range");
    let mut latest = Latest::new(config);

    // Phase 1 — warm-up: stream data until the window is full.
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(objects.next_object());
    }
    println!(
        "warm-up done: {} live objects in the window",
        latest.window_len()
    );

    // Phase 2 — pre-training: every query runs on all six estimators and
    // becomes training data for the Hoeffding tree.
    let downtown = Rect::centered_clamped(
        Point::new(-118.2, 34.0), // Los Angeles-ish
        2.0,
        1.5,
        &dataset.domain,
    );
    let mut qn = 0u32;
    while latest.phase() == PhaseTag::PreTraining {
        for _ in 0..25 {
            latest.ingest(objects.next_object());
        }
        let query = match qn % 3 {
            0 => RcDvq::spatial(downtown),
            1 => RcDvq::keyword(vec![KeywordId(qn % 50)]),
            _ => RcDvq::hybrid(downtown, vec![KeywordId(qn % 50)]),
        };
        let _ = latest.query(&query, QueryOptions::new());
        qn += 1;
    }
    println!(
        "pre-training done after {qn} queries; model: {:?}",
        latest.tree_stats()
    );

    // Phase 3 — incremental learning: one active estimator answers, the
    // system logs score it, and the adaptor switches when accuracy sags.
    for i in 0..200u32 {
        for _ in 0..25 {
            latest.ingest(objects.next_object());
        }
        let query = RcDvq::hybrid(downtown, vec![KeywordId(i % 20)]);
        let out = latest.query(&query, QueryOptions::new());
        if i % 50 == 0 {
            println!(
                "q{i:>3} [{}] estimate={:>8.1} actual={:>6} accuracy={:.2} latency={:.3}ms",
                out.estimator, out.estimate, out.actual, out.accuracy, out.latency_ms
            );
        }
    }

    let log = latest.log();
    println!(
        "\nactive estimator: {} | switches: {} | mean incremental accuracy: {:.3}",
        latest.active_kind(),
        log.switches.len(),
        log.mean_incremental_accuracy().unwrap_or(f64::NAN)
    );
    for sw in &log.switches {
        println!(
            "  switch at query #{}: {} -> {} (trigger avg {:.2})",
            sw.at_seq, sw.from, sw.to, sw.trigger_average
        );
    }
}
