//! Workload shift: watch the Estimator Adaptor (§V-D) switch live.
//!
//! The workload starts purely spatial (where the 2D histogram shines),
//! then flips to pure keyword queries (which a purely spatial summary
//! cannot answer at all). The example prints the moving-average accuracy
//! the adaptor monitors and annotates pre-fill starts and switches.
//!
//! ```text
//! cargo run --release -p latest-core --example workload_shift
//! ```

use estimators::EstimatorKind;
use geostream::synth::DatasetSpec;
use geostream::{Duration, KeywordId, Point, RcDvq, Rect};
use latest_core::{Latest, LatestConfig, PhaseTag, QueryOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let dataset = DatasetSpec::twitter();
    let mut objects = dataset.generator();
    let mut rng = StdRng::seed_from_u64(0x5417);

    let config = LatestConfig::builder()
        .window_span(Duration::from_secs(60))
        .warmup(Duration::from_secs(60))
        .pretrain_queries(150)
        // Start from the histogram so the shift to keywords must force a
        // switch.
        .default_estimator(EstimatorKind::H4096)
        .accuracy_window(24)
        .min_switch_spacing(24)
        .estimator_config(estimators::EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 5_000,
            ..estimators::EstimatorConfig::default()
        })
        .build()
        .expect("demo parameters are in range");
    let mut latest = Latest::new(config);

    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(objects.next_object());
    }

    let spatial_query = |rng: &mut StdRng, domain: &Rect| {
        let cx = rng.gen_range(domain.min_x..domain.max_x);
        let cy = rng.gen_range(domain.min_y..domain.max_y);
        RcDvq::spatial(Rect::centered_clamped(Point::new(cx, cy), 2.5, 2.0, domain))
    };

    // Pre-training with a mixed diet so the model knows all estimators.
    let mut n = 0u32;
    while latest.phase() == PhaseTag::PreTraining {
        for _ in 0..20 {
            latest.ingest(objects.next_object());
        }
        let q = if n.is_multiple_of(2) {
            spatial_query(&mut rng, &dataset.domain)
        } else {
            RcDvq::keyword(vec![KeywordId(rng.gen_range(0..40))])
        };
        let _ = latest.query(&q, QueryOptions::new());
        n += 1;
    }

    println!(
        "phase 1: pure spatial workload (active: {})",
        latest.active_kind()
    );
    println!("query  active  accuracy  monitor_avg");
    let print_row = |i: u32, latest: &Latest, acc: f64, switched: bool| {
        let avg = latest
            .log()
            .queries
            .last()
            .and_then(|q| q.monitor_average)
            .map(|a| format!("{a:.2}"))
            .unwrap_or_else(|| "warming".into());
        println!(
            "{i:>5}  {:<6}  {acc:>8.2}  {avg}{}{}",
            latest.active_kind().name(),
            if switched { "   << SWITCH" } else { "" },
            latest
                .prefilling()
                .map(|k| format!("   (pre-filling {k})"))
                .unwrap_or_default()
        );
    };

    for i in 0..260u32 {
        for _ in 0..15 {
            latest.ingest(objects.next_object());
        }
        // The shift: spatial for the first 120 queries, keyword afterwards.
        let q = if i < 120 {
            spatial_query(&mut rng, &dataset.domain)
        } else {
            RcDvq::keyword(vec![KeywordId(rng.gen_range(0..40))])
        };
        if i == 120 {
            println!("\nphase 2: workload flips to pure keyword queries\n");
        }
        let out = latest.query(&q, QueryOptions::new());
        if i % 20 == 0 || out.switched {
            print_row(i, &latest, out.accuracy, out.switched);
        }
    }

    println!("\nswitch history:");
    for sw in &latest.log().switches {
        println!(
            "  at query #{}: {} -> {} (monitor avg {:.2})",
            sw.at_seq, sw.from, sw.to, sw.trigger_average
        );
    }
    assert_ne!(
        latest.active_kind(),
        EstimatorKind::H4096,
        "the adaptor should have abandoned the keyword-blind histogram"
    );
    println!("\nfinal active estimator: {}", latest.active_kind());
}
