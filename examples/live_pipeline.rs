//! Live pipeline: run LATEST the way a service would — ingestion on a
//! background thread (crossbeam channel with backpressure), queries from
//! several client threads against a shared handle.
//!
//! This keeps one instance behind a lock; to spread the stream itself
//! across cores (one window + pool + cache per shard, scatter-gather
//! queries), see the `sharded_serving` example.
//!
//! ```text
//! cargo run --release -p latest-core --example live_pipeline
//! ```

use estimators::EstimatorConfig;
use geostream::synth::DatasetSpec;
use geostream::{Duration, KeywordId, Point, RcDvq, Rect};
use latest_core::concurrent::StreamPipeline;
use latest_core::{LatestConfig, PhaseTag, QueryOptions};

fn main() {
    let dataset = DatasetSpec::twitter();
    // Four pool workers: pre-training and shadow maintenance fan the six
    // estimators across threads instead of updating them serially.
    let config = LatestConfig::builder()
        .window_span(Duration::from_secs(60))
        .warmup(Duration::from_secs(60))
        .pretrain_queries(120)
        .pool_workers(4)
        .estimator_config(EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 5_000,
            ..EstimatorConfig::default()
        })
        .build()
        .expect("demo parameters are in range");

    println!("spawning ingestion pipeline…");
    let pipeline =
        StreamPipeline::spawn(config, dataset.generator(), 8_192).expect("pipeline threads spawn");
    pipeline.wait_for_phase(PhaseTag::PreTraining);
    println!(
        "window filled: {} live objects",
        pipeline.handle().window_len()
    );

    // Feed the pre-training phase from the main thread.
    let hotspots: Vec<Point> = dataset
        .spatial_model()
        .hotspots()
        .iter()
        .take(8)
        .map(|h| h.center)
        .collect();
    let handle = pipeline.handle();
    let mut i = 0u32;
    while handle.phase() == PhaseTag::PreTraining {
        let c = hotspots[i as usize % hotspots.len()];
        let area = Rect::centered_clamped(c, 2.0, 1.5, &dataset.domain);
        let q = match i % 3 {
            0 => RcDvq::spatial(area),
            1 => RcDvq::keyword(vec![KeywordId(i % 40)]),
            _ => RcDvq::hybrid(area, vec![KeywordId(i % 40)]),
        };
        let _ = handle
            .query(&q, QueryOptions::new())
            .expect("pipeline is live");
        i += 1;
    }
    println!("pre-training finished after {i} queries; serving clients…\n");

    // Periodic observability scrape: a background thread snapshots the
    // metrics registry (counters, latency histograms, lifecycle events)
    // every 10 ms while the clients run.
    let scraper = pipeline
        .spawn_scraper(std::time::Duration::from_millis(10), 64)
        .expect("scraper thread spawns");

    // Four concurrent "client" threads hammer the shared instance while
    // ingestion keeps running underneath.
    let mut clients = Vec::new();
    for t in 0..4u32 {
        let handle = pipeline.handle();
        let hotspots = hotspots.clone();
        let domain = dataset.domain;
        clients.push(std::thread::spawn(move || {
            let mut acc_sum = 0.0;
            let queries = 200;
            for i in 0..queries {
                let c = hotspots[(t + i) as usize % hotspots.len()];
                let area = Rect::centered_clamped(c, 2.0, 1.5, &domain);
                let q = if (t + i) % 2 == 0 {
                    RcDvq::spatial(area)
                } else {
                    RcDvq::hybrid(area, vec![KeywordId((t * 53 + i) % 40)])
                };
                acc_sum += handle
                    .query(&q, QueryOptions::new())
                    .expect("pipeline is live")
                    .accuracy;
            }
            (t, acc_sum / queries as f64)
        }));
    }
    for client in clients {
        let (t, mean_acc) = client.join().expect("client thread panicked");
        println!("client {t}: mean accuracy {mean_acc:.3} over 200 queries");
    }

    let handle = pipeline.handle();
    println!(
        "\nactive estimator: {} | switches: {} | window: {} objects",
        handle.active_kind(),
        handle.switch_count(),
        handle.window_len()
    );

    // Drain the scrape stream, then take one final snapshot directly
    // (MetricsSnapshot::to_json() gives the machine-readable form).
    let _ = scraper.latest();
    let taken = scraper.stop();
    let snap = handle.metrics_snapshot();
    println!(
        "scraper took {taken} periodic snapshots; final: {} queries, \
         {} lifecycle events, executor path mix {}/{} (spatial/inverted)",
        snap.queries_total,
        snap.events.len(),
        snap.executor.spatial,
        snap.executor.inverted
    );
    let ingested = pipeline.shutdown();
    println!("pipeline ingested {ingested} objects in the background");
}
